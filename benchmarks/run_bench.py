#!/usr/bin/env python
"""Benchmark runner: measures the pipeline's hot paths and emits a trajectory
JSON (``BENCH_PR<n>.json``) that future PRs regress against.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py [-o BENCH_PR6.json]
    PYTHONPATH=src python benchmarks/run_bench.py --quick --check BENCH_PR6.json

Measured sections
-----------------
* ``sim_micro``   -- the repeated-phase microbenchmark (jacobi 8x8, the
  compute/comm sweep repeated 100x) with the step cache on and off; the
  ratio is the PR 1 memoization speedup.
* ``sim_kernel``  -- the batched numpy step kernel vs. the per-step event
  loop (memoization off) on jacobi8x8 x100, a 64-cluster torus, and a
  1k-task synthetic stencil; the ratio is the PR 6 headline.
* ``e2e``         -- map_computation + simulate wall-clock on the paper's
  benchmark workloads (nbody63, jacobi8x8, fft64).
* ``contraction`` -- MWM-Contract on the n-body 63-task graph and a scaled
  community graph (256 tasks / 64 clusters).
* ``embed``       -- NN-Embed, 256 singleton clusters onto a 16x16 torus:
  vectorized kernel vs. the reference loop (PR 2 headline).
* ``route``       -- MM-Route on a scattered fft64/hypercube4 workload:
  table kernel vs. the label-based reference.
* ``metrics``     -- METRICS analyze with the bincount kernel vs. the
  per-hop dict reference (simulation excluded via ``sim=``).
* ``portfolio``   -- ``map_many`` over 8 (graph, topology) pairs: 4-worker
  process pool vs. sequential, with winner-determinism checked.
* ``cache``       -- cold vs. warm ``run_pipeline`` on jacobi8x8 against
  an explicit tempdir :class:`~repro.pipeline.ArtifactCache`: the memory-
  and disk-tier hit latencies vs. a full pipeline run (PR 4 headline).
* ``runtime``     -- the supervised runtime (PR 5): per-task supervision
  overhead vs. a bare loop, a chaos-injected failure sweep (crashes +
  transients with retries) vs. its clean run, and checkpoint-resume
  (cold sweep vs. journal-served re-invocation).
* ``mapping_scale`` -- the PR 7 headline: the multilevel strategy
  (CSR coarsening + vectorized delta-gain uncoarsening) against the
  BFS-block baseline -- and, at the kilotask size where it is still
  tractable, MWM-Contract with and without refinement -- on 1k/10k/100k
  task graphs, recording wall-clock and aggregate comm cost for each.
* ``machines``    -- the PR 9 headline: the multilevel strategy on a
  two-level fat tree (10k tasks, 256 processors) vs. the flat torus of
  the same size, and a capacity-tight node x core cluster where the
  capacity-aware mapper must land feasible while the scalar-bound
  escape hatch (``capacity_mode="ignore"``) overflows.
* ``serving``     -- the PR 8 headline: a real ``repro serve`` subprocess
  under a concurrent ``repro.serve.loadgen`` stream -- cold computes vs.
  warm cache hits (p50/p99/throughput), repeat-burst bit-determinism, a
  thundering herd that must compute exactly once, and a graceful drain.
* ``online``      -- the PR 10 headline: the continuous-operation
  mapping session under event churn -- steady-state per-event reaction
  latency (p50/p99) over a mixed seeded stream, and final quality vs. a
  from-scratch remap oracle at three churn intensities.
* ``perf_spans``  -- the repro.util.perf span totals recorded while the
  suite ran, so per-stage attribution lands in the trajectory too.

The process-wide default artifact cache is switched off for the whole run
(``REPRO_CACHE=off``): every legacy section must measure real mapping
work, never a content-addressed hit.  Only the ``cache`` section caches,
through its own explicit temporary-directory store.

All timings are best-of-N wall-clock seconds (N=5 for sub-10ms items;
``--quick`` drops to N=1 for the CI smoke job).

``--check BASELINE.json`` compares every ``*_s`` timing against the
committed baseline and exits non-zero when any stage regresses more than
``--max-regression`` (default 3x) -- the CI guard against silent
performance regressions.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import tempfile
import time
from pathlib import Path

from repro.arch import networks
from repro.graph import families
from repro.graph.phase_expr import Rep
from repro.graph.taskgraph import TaskGraph
from repro.larcs import stdlib
from repro.mapper import map_computation, map_many
from repro.mapper.contraction import mwm_contract
from repro.mapper.embedding.nn_embed import assignment_from_clusters, nn_embed
from repro.mapper.routing.mm_route import mm_route
from repro.metrics.analysis import analyze
from repro.pipeline import (
    ArtifactCache,
    MapConfig,
    RunConfig,
    SimConfig,
    run_pipeline,
)
from repro.pipeline.cache import reset_default_cache
from repro.sim import CostModel, simulate
from repro.util import perf

MODEL = CostModel(hop_latency=1.0, byte_time=0.5, exec_time=0.05)

WORKLOADS = [
    ("nbody63", lambda: families.nbody(63, volume=4.0),
     lambda: networks.hypercube(4)),
    ("jacobi8x8", lambda: stdlib.load("jacobi", rows=8, cols=8, msize=4),
     lambda: networks.mesh(4, 4)),
    ("fft64", lambda: stdlib.load("fft", m=6, msize=4),
     lambda: networks.hypercube(4)),
]

#: (graph, topology) batch for the portfolio benchmark -- 8 mixed pairs.
PORTFOLIO_PAIRS = [
    ("nbody63/hcube4", lambda: families.nbody(63, volume=4.0),
     lambda: networks.hypercube(4)),
    ("jacobi8x8/mesh4x4", lambda: stdlib.load("jacobi", rows=8, cols=8, msize=4),
     lambda: networks.mesh(4, 4)),
    ("fft64/hcube4", lambda: stdlib.load("fft", m=6, msize=4),
     lambda: networks.hypercube(4)),
    ("ring64/hcube4", lambda: families.ring(64),
     lambda: networks.hypercube(4)),
    ("torus8x8/mesh4x4", lambda: families.torus(8, 8),
     lambda: networks.mesh(4, 4)),
    ("hcube6/hcube4", lambda: families.hypercube(6),
     lambda: networks.hypercube(4)),
    ("btree5/mesh4x4", lambda: families.binomial_tree(5),
     lambda: networks.mesh(4, 4)),
    ("butterfly32/hcube4", lambda: families.fft_butterfly(32),
     lambda: networks.hypercube(4)),
]

REPEATS = 5


def best_of(fn, repeats: int | None = None) -> float:
    times = []
    for _ in range(repeats or REPEATS):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def communities(p: int) -> TaskGraph:
    """p heavy 4-task communities in a light ring (Fig 5's pattern scaled)."""
    n = 4 * p
    tg = TaskGraph(f"communities{n}")
    tg.add_nodes(range(n))
    ph = tg.add_comm_phase("comm")
    for c in range(p):
        base = 4 * c
        ph.add(base, base + 1, 20.0)
        ph.add(base + 2, base + 3, 18.0)
        ph.add(base + 1, base + 2, 15.0)
        ph.add((base + 3) % n, (base + 4) % n, 2.0)
    return tg


def bench_sim_micro() -> dict:
    tg = stdlib.load("jacobi", rows=8, cols=8, msize=4)
    tg.phase_expr = Rep(tg.phase_expr, 100)
    mapping = map_computation(tg, networks.mesh(4, 4))
    memoized = best_of(lambda: simulate(mapping, MODEL))
    uncached = best_of(lambda: simulate(mapping, MODEL, memoize=False))
    identical = simulate(mapping, MODEL) == simulate(mapping, MODEL, memoize=False)
    return {
        "workload": "jacobi8x8_x100",
        "memoized_s": memoized,
        "uncached_s": uncached,
        "speedup": uncached / memoized,
        "results_identical": identical,
    }


#: (name, task-graph factory, topology factory, phase-expr repetitions)
#: for the kernel face-off.  Repetitions keep the reference event loop in
#: its realistic regime (sweeps and portfolios simulate long expressions).
SIM_KERNEL_WORKLOADS = [
    ("jacobi8x8_x100", lambda: stdlib.load("jacobi", rows=8, cols=8, msize=4),
     lambda: networks.mesh(4, 4), 100),
    ("torus64_x100", lambda: families.torus(8, 8),
     lambda: networks.torus(4, 4), 100),
    ("jacobi32x32_x50", lambda: stdlib.load("jacobi", rows=32, cols=32, msize=4),
     lambda: networks.mesh(8, 8), 50),
]


def bench_sim_kernel() -> dict:
    """Vector vs. reference step kernel, memoization off (the PR 6 headline).

    Memoization is disabled so both engines honestly recompute every step
    -- the regime of portfolio candidates and sweep rows, where each
    mapping is simulated once and the step cache starts cold.  Identity is
    checked field-by-field on the full :class:`SimulationResult`.
    """
    out = {}
    for name, tg_fn, topo_fn, reps in SIM_KERNEL_WORKLOADS:
        tg = tg_fn()
        tg.phase_expr = Rep(tg.phase_expr, reps)
        mapping = map_computation(tg, topo_fn())
        ref = simulate(mapping, MODEL, memoize=False, kernel="reference")
        vec = simulate(mapping, MODEL, memoize=False, kernel="vector")
        identical = (
            vec.total_time == ref.total_time
            and vec.step_times == ref.step_times
            and vec.link_busy == ref.link_busy
            and vec.proc_busy == ref.proc_busy
            and vec.phase_time == ref.phase_time
            and vec.messages == ref.messages
        )
        reference_s = best_of(
            lambda: simulate(mapping, MODEL, memoize=False, kernel="reference"), 3
        )
        vector_s = best_of(
            lambda: simulate(mapping, MODEL, memoize=False, kernel="vector"), 3
        )
        out[name] = {
            "reference_s": reference_s,
            "vector_s": vector_s,
            "speedup": reference_s / vector_s,
            "results_identical": identical,
        }
    return out


def bench_e2e() -> dict:
    out = {}
    for name, tg_fn, topo_fn in WORKLOADS:
        tg, topo = tg_fn(), topo_fn()
        out[name] = {
            "map_s": best_of(lambda: map_computation(tg, topo), 3),
        }
        mapping = map_computation(tg, topo)
        out[name]["simulate_s"] = best_of(lambda: simulate(mapping, MODEL), 3)
        out[name]["total_time"] = simulate(mapping, MODEL).total_time
    return out


def bench_contraction() -> dict:
    nbody = families.nbody(63, volume=4.0)
    big = communities(64)
    # Warm each graph's cached static views (CSR bundle + nx graph) so the
    # timings measure the matching itself, not one-off cache builds --
    # with --quick's single repeat a cold first call would dominate.
    mwm_contract(nbody, 16)
    mwm_contract(big, 64, load_bound=4)
    return {
        "mwm_nbody63_p16_s": best_of(lambda: mwm_contract(nbody, 16)),
        "mwm_communities256_p64_s": best_of(
            lambda: mwm_contract(big, 64, load_bound=4), 3
        ),
    }


def bench_embed() -> dict:
    """The PR 2 headline: 256 clusters onto a 256-processor torus."""
    tg = families.torus(16, 16)
    topo = networks.torus(16, 16)
    clusters = [[t] for t in tg.nodes]
    nn_embed(tg, clusters, topo)  # warm the distance-matrix cache
    vector = best_of(lambda: nn_embed(tg, clusters, topo), 3)
    reference = best_of(
        lambda: nn_embed(tg, clusters, topo, kernel="reference"), 1
    )
    identical = nn_embed(tg, clusters, topo) == nn_embed(
        tg, clusters, topo, kernel="reference"
    )
    return {
        "workload": "torus16x16_256clusters",
        "vector_s": vector,
        "reference_s": reference,
        "speedup": reference / vector,
        "results_identical": identical,
    }


def bench_route() -> dict:
    """Table-driven vs. label-based MM-Route on a contended scatter."""
    tg = stdlib.load("fft", m=6, msize=4)
    topo = networks.hypercube(4)
    # A deliberately poor round-robin scatter maximises routing work.
    assignment = {t: i % topo.n_processors for i, t in enumerate(tg.nodes)}
    mm_route(tg, topo, assignment)  # warm the next-hop tables
    table = best_of(lambda: mm_route(tg, topo, assignment), 3)
    reference = best_of(
        lambda: mm_route(tg, topo, assignment, kernel="reference"), 3
    )
    a = mm_route(tg, topo, assignment)
    b = mm_route(tg, topo, assignment, kernel="reference")
    return {
        "workload": "fft64_scattered_hcube4",
        "table_s": table,
        "reference_s": reference,
        "speedup": reference / table,
        "results_identical": a.routes == b.routes and a.rounds == b.rounds,
    }


def bench_metrics() -> dict:
    """bincount vs. per-hop dict METRICS accumulation (simulation excluded).

    A 256-task torus scattered round-robin over a 64-processor hypercube:
    1024 edges with multi-hop routes, so per-link accumulation dominates.
    """
    from repro.mapper.mapping import Mapping
    from repro.mapper.routing.mm_route import mm_route

    tg = families.torus(16, 16)
    topo = networks.hypercube(6)
    assignment = {t: i % topo.n_processors for i, t in enumerate(tg.nodes)}
    mapping = Mapping(tg, topo, assignment, mm_route(tg, topo, assignment).routes)
    sim = simulate(mapping, MODEL)
    vector = best_of(lambda: analyze(mapping, MODEL, sim=sim), 3)
    reference = best_of(
        lambda: analyze(mapping, MODEL, sim=sim, kernel="reference"), 3
    )
    identical = analyze(mapping, MODEL, sim=sim) == analyze(
        mapping, MODEL, sim=sim, kernel="reference"
    )
    return {
        "workload": "torus16x16_scattered_hcube6",
        "vector_s": vector,
        "reference_s": reference,
        "speedup": reference / vector,
        "results_identical": identical,
    }


def bench_portfolio() -> dict:
    """map_many over 8 pairs: 4-worker process pool vs. sequential.

    The speedup scales with available cores (recorded in ``meta``); a
    warm-up pass fills every topology/graph cache first so both timed runs
    see identical state.
    """
    pairs = [(tg_fn(), topo_fn()) for _, tg_fn, topo_fn in PORTFOLIO_PAIRS]
    map_many(pairs, model=MODEL, executor="serial")  # warm all caches

    start = time.perf_counter()
    serial = map_many(pairs, model=MODEL, executor="serial")
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = map_many(pairs, model=MODEL, executor="process", max_workers=4)
    parallel_s = time.perf_counter() - start

    deterministic = [r.winner for r in serial] == [
        r.winner for r in parallel
    ] and [r.completion_time for r in serial] == [
        r.completion_time for r in parallel
    ]
    out = {
        "pairs": [name for name, _, _ in PORTFOLIO_PAIRS],
        "workers": 4,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s,
        "winners": [r.winner for r in serial],
        "deterministic": deterministic,
    }
    if (os.cpu_count() or 1) <= 1:
        out["note"] = (
            "single-core host: the pool time-slices one CPU, so the "
            "measured speedup is bounded by pool overhead; the win "
            "materialises with cores (workers are fully independent)"
        )
    return out


def bench_resilience() -> dict:
    """Incremental repair vs. full remap, and sweep throughput (PR 3).

    A jacobi-style 8x8 stencil on the 64-processor hypercube with 1-4
    failed processors: the incremental path relocates only the stranded
    tasks and re-routes only the affected edges, so it should beat a full
    ``map_computation`` on the degraded machine.  The sweep injects all 64
    single-processor faults, serial vs. a 4-worker process pool, and
    asserts the criticality rankings are identical.
    """
    from repro.resilience import FaultSet, failure_sweep, repair_mapping

    tg = stdlib.load("jacobi", rows=8, cols=8, msize=4)
    topo = networks.hypercube(6)
    mapping = map_computation(tg, topo)

    out: dict = {"workload": "jacobi8x8_hcube6", "repair": {}}
    for n_failed in (1, 2, 3, 4):
        faults = FaultSet(failed_procs=[0, 21, 42, 63][:n_failed])
        report = repair_mapping(tg, mapping, topo, faults, model=MODEL)
        repair_s = best_of(
            lambda: repair_mapping(tg, mapping, topo, faults, model=MODEL), 3
        )
        degraded = topo.degrade(faults)
        full_s = best_of(lambda: map_computation(tg, degraded), 3)
        report.mapping.validate(require_routes=True)
        avoids_failed = not (
            set(report.mapping.assignment.values()) & set(faults.failed_procs)
        )
        out["repair"][f"failed{n_failed}"] = {
            "repair_s": repair_s,
            "full_remap_s": full_s,
            "speedup": full_s / repair_s,
            "strategy": report.strategy,
            "moved_tasks": report.n_moved,
            "rerouted": report.n_rerouted,
            "kept_routes": report.kept_routes,
            "valid": True,
            "avoids_failed_hardware": avoids_failed,
        }

    start = time.perf_counter()
    serial = failure_sweep(tg, topo, mapping=mapping, model=MODEL,
                           executor="serial")
    sweep_serial_s = time.perf_counter() - start
    start = time.perf_counter()
    parallel = failure_sweep(tg, topo, mapping=mapping, model=MODEL,
                             executor="process", max_workers=4)
    sweep_parallel_s = time.perf_counter() - start
    deterministic = [
        (e.label, e.status, e.ratio) for e in serial.ranking()
    ] == [(e.label, e.status, e.ratio) for e in parallel.ranking()]
    out["sweep"] = {
        "faults": len(serial.entries),
        "workers": 4,
        "serial_s": sweep_serial_s,
        "parallel_s": sweep_parallel_s,
        "speedup": sweep_serial_s / sweep_parallel_s,
        "throughput_faults_per_s": len(serial.entries) / sweep_serial_s,
        "deterministic": deterministic,
        "most_critical": serial.ranking()[0].label,
    }
    return out


def bench_cache() -> dict:
    """Cold vs. warm ``run_pipeline`` on jacobi8x8 (the PR 4 headline).

    Cold = the full six-stage pipeline against an *empty* tempdir cache
    (cleared between repeats).  Warm-memory = the same call served from
    the in-process LRU; warm-disk = a second :class:`ArtifactCache` over
    the same directory (an empty memory tier -- what a restarted process
    sees), served by unpickling the disk entry.  Every tier must hand
    back a result with identical artifacts.
    """
    tg = stdlib.load("jacobi", rows=8, cols=8, msize=4)
    topo = networks.mesh(4, 4)
    config = RunConfig(sim=SimConfig.from_model(MODEL))

    with tempfile.TemporaryDirectory() as tmp:
        cache = ArtifactCache(tmp)

        cold_times = []
        for _ in range(3 if REPEATS > 1 else 1):
            cache.clear(disk=True)  # outside the timed region
            start = time.perf_counter()
            baseline = run_pipeline(tg, topo, config, cache=cache)
            cold_times.append(time.perf_counter() - start)
        cold_s = min(cold_times)

        warm_s = best_of(
            lambda: run_pipeline(tg, topo, config, cache=cache), 3
        )
        warm = run_pipeline(tg, topo, config, cache=cache)

        restarted = ArtifactCache(tmp)  # memory tier empty, disk shared
        start = time.perf_counter()
        disk = run_pipeline(tg, topo, config, cache=restarted)
        disk_s = time.perf_counter() - start

    identical = all(
        r.mapping.assignment == baseline.mapping.assignment
        and r.mapping.routes == baseline.mapping.routes
        and r.sim.total_time == baseline.sim.total_time
        for r in (warm, disk)
    )
    return {
        "workload": "jacobi8x8_mesh4x4_full_pipeline",
        "cold_s": cold_s,
        "warm_memory_s": warm_s,
        "warm_disk_s": disk_s,
        "speedup_memory": cold_s / warm_s,
        "speedup_disk": cold_s / disk_s,
        "tiers_hit": {
            "memory": warm.cache_tier == "memory",
            "disk": disk.cache_tier == "disk",
        },
        "results_identical": identical,
    }


def _square(x: int) -> int:
    return x * x


def bench_runtime() -> dict:
    """Supervision overhead, chaos resilience, and checkpoint resume (PR 5).

    Overhead: 64 trivial tasks through ``run_supervised`` (serial) vs. a
    bare Python loop -- the per-task cost of specs, attempt accounting,
    and result boxing.  Chaos: the 64-fault jacobi sweep under a seeded
    plan (~10% crashes, ~10% transients, one retry) must complete with
    explicit failed rows and rank survivors exactly like the clean sweep
    ranks them.  Resume: the same sweep with ``resume="auto"`` against a
    tempdir cache, cold vs. journal-served re-invocation, bit-identical.
    """
    from repro.resilience import failure_sweep
    from repro.runtime import ChaosPlan, RetryPolicy, run_supervised

    payloads = list(range(64))
    bare_s = best_of(lambda: [_square(x) for x in payloads])
    supervised_s = best_of(lambda: run_supervised(_square, payloads))
    out: dict = {
        "overhead": {
            "tasks": len(payloads),
            "bare_loop_s": bare_s,
            "supervised_serial_s": supervised_s,
            "per_task_overhead_us": (supervised_s - bare_s) / len(payloads) * 1e6,
        },
    }

    tg = stdlib.load("jacobi", rows=8, cols=8, msize=4)
    topo = networks.hypercube(6)
    mapping = map_computation(tg, topo)
    clean = failure_sweep(tg, topo, mapping=mapping, model=MODEL)
    chaos = ChaosPlan.random(
        seed=5, n_tasks=len(clean.entries), crash=0.1, transient=0.1,
        attempts=2,
    )
    retry = RetryPolicy(max_attempts=2, backoff=0.001)
    start = time.perf_counter()
    chaotic = failure_sweep(
        tg, topo, mapping=mapping, model=MODEL, chaos=chaos, retry=retry
    )
    chaos_s = time.perf_counter() - start
    survivors_match = [
        (e.label, e.ratio) for e in chaotic.ranking() if e.status == "ok"
    ] == [
        (e.label, e.ratio) for e in clean.ranking()
        if e.status == "ok" and e.label not in
        {x.label for x in chaotic.entries if x.status == "failed"}
    ]
    dist = chaotic.distribution()
    out["chaos_sweep"] = {
        "workload": "jacobi8x8_hcube6",
        "faults": dist["faults"],
        "injected_crashes": len(chaos.crashes),
        "injected_transients": len(chaos.transients),
        "failed_rows": dist["failed"],
        "chaotic_s": chaos_s,
        "survivor_ranking_matches_clean": survivors_match,
    }

    with tempfile.TemporaryDirectory() as tmp:
        cache = ArtifactCache(tmp)
        start = time.perf_counter()
        cold = failure_sweep(
            tg, topo, mapping=mapping, model=MODEL, resume="auto", cache=cache
        )
        cold_s = time.perf_counter() - start
        restarted = ArtifactCache(tmp)  # a "new process": disk tier only
        start = time.perf_counter()
        resumed = failure_sweep(
            tg, topo, mapping=mapping, model=MODEL, resume="auto",
            cache=restarted,
        )
        resumed_s = time.perf_counter() - start
    out["checkpoint"] = {
        "workload": "jacobi8x8_hcube6",
        "cold_s": cold_s,
        "resumed_s": resumed_s,
        "speedup": cold_s / resumed_s,
        "results_identical": resumed.to_dict() == cold.to_dict(),
    }
    return out


#: (name, tasks, graph factory, topology factory, strategies) for the
#: scale benchmark.  MWM-Contract is quadratic-ish in candidate pairs, so
#: it only runs at the kilotask size; the BFS-block baseline and the
#: multilevel path run everywhere.
SCALE_WORKLOADS = [
    ("mesh32x32/hcube6", 1024, lambda: families.mesh(32, 32),
     lambda: networks.hypercube(6), ("mwm", "mwm+delta_gain", "multilevel")),
    ("rgg10k/torus16x16", 10_000,
     lambda: families.random_geometric(10_000, seed=1),
     lambda: networks.torus(16, 16), ("multilevel",)),
    ("rgg100k/torus16x16", 100_000,
     lambda: families.random_geometric(100_000, seed=1),
     lambda: networks.torus(16, 16), ("multilevel",)),
]


def bench_mapping_scale() -> dict:
    """Multilevel vs. the existing strategies at 1k/10k/100k (PR 7).

    Quality is the aggregate comm cost (sum of volume x hop-distance over
    the folded static graph); routing is skipped so the timing is pure
    contraction + embedding + refinement.  The BFS-block baseline
    (bfs_contract + nn_embed) anchors every size; at 100k tasks it is the
    only other path that still finishes in seconds.
    """
    import math

    from repro.mapper.contraction import bfs_contract
    from repro.mapper.mapping import Mapping
    from repro.metrics import comm_cost

    out: dict = {}
    for name, n_tasks, tg_fn, topo_fn, strategies in SCALE_WORKLOADS:
        tg, topo = tg_fn(), topo_fn()
        tg.csr()  # warm the shared CSR bundle outside the timed regions
        bound = math.ceil(n_tasks / topo.n_processors)
        row: dict = {"tasks": n_tasks, "procs": topo.n_processors}

        def bfs_map():
            clusters = bfs_contract(tg, topo.n_processors, load_bound=bound)
            placement = nn_embed(tg, clusters, topo)
            return Mapping(
                tg, topo, assignment_from_clusters(clusters, placement), {}
            )

        row["bfs_baseline"] = {
            "map_s": best_of(bfs_map, 1 if n_tasks > 1024 else 3),
            "comm_cost": comm_cost(bfs_map()),
        }
        for strat in strategies:
            base, _, refined = strat.partition("+")
            kwargs = {"strategy": base, "route": False}
            if refined:
                kwargs["refine"] = refined
            row[strat] = {
                "map_s": best_of(
                    lambda: map_computation(tg, topo, **kwargs),
                    1 if n_tasks > 1024 else 3,
                ),
                "comm_cost": comm_cost(map_computation(tg, topo, **kwargs)),
            }
        best_other = min(
            v["comm_cost"] for k, v in row.items()
            if isinstance(v, dict) and k != "multilevel"
        )
        row["multilevel"]["vs_best_other"] = (
            best_other / row["multilevel"]["comm_cost"]
        )
        out[name] = row
    return out


def bench_machines() -> dict:
    """The PR 9 headline: hierarchical machines and capacity vectors.

    Two scenarios:

    * ``rgg10k_fat_tree`` -- the 10k-task random geometric graph mapped
      by the multilevel strategy onto a two-level ``fat_tree([16, 16])``
      (256 processors, thin leaf links under a 2x spine), timed against
      the flat ``torus16x16`` machine of the same size: the hierarchy
      lowers to ordinary links + slowdowns, so the mapping cost should
      stay in the same regime.
    * ``hotspot1024_capacity`` -- a 32x32 stencil with an 8x8 corner
      block of weight-8 tasks onto a ``node_core_tree(8, 4)`` whose
      32 processors each hold 96 units of weight-rule memory.  The
      capacity-aware run (``capacity_mode="strict"``) must land with
      zero overflows; the scalar-bound escape hatch
      (``capacity_mode="ignore"``) packs by task count and must
      overflow -- the feasibility gap the multi-resource model closes.
    """
    from repro.arch.hierarchy import fat_tree, node_core_tree
    from repro.metrics import comm_cost

    out: dict = {}

    rgg = families.random_geometric(10_000, seed=1)
    rgg.csr()
    tree = fat_tree([16, 16])
    flat = networks.torus(16, 16)
    row: dict = {"tasks": 10_000, "procs": tree.n_processors}
    for label, machine in (("fat_tree16x16", tree), ("torus16x16", flat)):
        machine.distance_matrix()
        run = lambda: map_computation(  # noqa: E731
            rgg, machine, strategy="multilevel", route=False
        )
        row[label] = {"map_s": best_of(run, 1), "comm_cost": comm_cost(run())}
    out["rgg10k_fat_tree"] = row

    side, block = 32, 8
    hotspot = TaskGraph(f"hotspot{side}x{side}")
    for r in range(side):
        for c in range(side):
            hotspot.add_node(
                r * side + c, 8.0 if r < block and c < block else 1.0
            )
    ph = hotspot.add_comm_phase("stencil")
    for r in range(side):
        for c in range(side):
            i = r * side + c
            if c + 1 < side:
                ph.add(i, i + 1, 1.0)
            if r + 1 < side:
                ph.add(i, i + side, 1.0)
    hotspot.add_exec_phase("work", 1.0)
    machine = node_core_tree(
        8, 4, capacities={"memory": {"demand": "weight", "cap": 96.0}}
    )
    ctx = machine.capacities.context(hotspot, machine)
    stages = ("contract", "embed", "refine")
    results = {}
    for mode in ("strict", "ignore"):
        config = RunConfig(
            map=MapConfig(strategy="multilevel", capacity_mode=mode),
            stages=stages, cache=False,
        )
        elapsed = best_of(lambda: run_pipeline(hotspot, machine, config), 3)
        mapping = run_pipeline(hotspot, machine, config).mapping
        overflows = ctx.overflows(mapping.assignment)
        results[mode] = {
            "map_s": elapsed,
            "overflowing_procs": len(overflows),
            "worst_overflow": max(
                (o["demand"] / o["capacity"] for o in overflows), default=0.0
            ),
        }
    out["hotspot1024_capacity"] = {
        "tasks": 1024,
        "procs": 32,
        "capacity": "memory(weight) 96/processor",
        "strict": results["strict"],
        "ignore": results["ignore"],
        "capacity_aware_feasible": results["strict"]["overflowing_procs"] == 0,
        "scalar_bound_overflows": results["ignore"]["overflowing_procs"] > 0,
    }
    return out


def bench_serving() -> dict:
    """The PR 8 headline: the HTTP serving tier under concurrent load.

    Spawns a real ``repro serve`` subprocess over a fresh cache directory
    and drives it with :mod:`repro.serve.loadgen`:

    * ``cold``   -- the unique instances, sequentially, all computed.
    * ``warm``   -- the full request stream (each unique instance repeated
      many times) at high concurrency: every repeat must be a cache hit,
      and the warm p50 is the headline against the cold p50.
    * ``repeat`` -- the same stream again; its result hashes must equal
      the warm pass's exactly (bit-identical payload determinism).
    * ``herd``   -- a thundering herd on one brand-new fingerprint,
      barrier-released; the server must compute it exactly once.

    Latencies land as ``*_ms`` (load-dependent, exempt from the
    regression gate); only phase wall-clocks are gated.
    """
    from repro.serve import loadgen

    quick = REPEATS == 1
    unique = 8
    total = 240 if quick else 1024
    herd_size = 100 if quick else 1000
    concurrency = 32

    env = {**os.environ, "PYTHONPATH": "src"}
    env.pop("REPRO_CACHE", None)  # the serving tier must cache
    env.pop("REPRO_CHAOS", None)
    with tempfile.TemporaryDirectory() as cache_dir:
        env["REPRO_CACHE_DIR"] = cache_dir
        process, host, port = loadgen.spawn_server(env=env)
        try:
            bodies = loadgen.default_bodies(
                total, unique,
                program="jacobi", bind={"rows": 16, "cols": 16, "msize": 4},
                topology="mesh:4x4",
            )
            cold = loadgen.fire(host, port, bodies[:unique], concurrency=1,
                                timeout=120)
            # like-for-like p50: the same instances, again sequentially,
            # now all cache hits (the concurrent burst below measures
            # throughput, where queueing dominates individual latency)
            warm_seq = loadgen.fire(host, port, bodies[:unique],
                                    concurrency=1, timeout=120)
            warm = loadgen.fire(host, port, bodies, concurrency=concurrency,
                                timeout=120)
            repeat = loadgen.fire(host, port, bodies, concurrency=concurrency,
                                  timeout=120)
            herd_body = loadgen.default_bodies(
                unique + 1, unique + 1,
                program="jacobi", bind={"rows": 16, "cols": 16, "msize": 4},
                topology="mesh:4x4",
            )[unique]
            herd = loadgen.fire(host, port, [herd_body] * herd_size,
                                concurrency=herd_size, barrier=True,
                                timeout=300)
            _, stats = loadgen.request_once(host, port, "GET", "/v1/stats",
                                            timeout=60)
        finally:
            drain_rc = loadgen.drain_server(process)

    return {
        "workload": f"jacobi16x16/mesh:4x4, {unique} unique instances, "
                    f"{total} requests at concurrency {concurrency}, "
                    f"herd of {herd_size}",
        "cold": cold.to_dict(),
        "warm_sequential": warm_seq.to_dict(),
        "warm": warm.to_dict(),
        "repeat": repeat.to_dict(),
        "herd": herd.to_dict(),
        "warm_over_cold_p50": (
            cold.p50_s / warm_seq.p50_s if warm_seq.p50_s > 0 else 0.0
        ),
        "deterministic": (
            cold.result_hashes == warm_seq.result_hashes
            and warm_seq.result_hashes == warm.result_hashes
            and warm.result_hashes == repeat.result_hashes
            and len(herd.result_hashes) == 1
        ),
        "herd_computed_once": herd.computed == 1,
        "server_cache": {
            key: stats["cache"][key]
            for key in ("hits_memory", "hits_disk", "misses", "computed",
                        "singleflight_waits", "crossprocess_waits")
        },
        "drain_rc": drain_rc,
    }


def bench_online() -> dict:
    """The PR 10 headline: the continuous-operation session under churn.

    * ``steady_state`` -- a mixed seeded event stream (arrivals,
      departures, drift, faults, recoveries, bursts, flaps) applied to a
      live session on the 64-processor hypercube: total wall-clock
      (gated) plus per-event reaction latency p50/p99 (load-dependent,
      ``*_ms``, exempt from the gate) and throughput.
    * ``quality_vs_churn`` -- the same instance at three churn
      intensities; after the stream, the session's served comm cost is
      compared against a from-scratch remap of the final graph on the
      final machine (the oracle a non-incremental toolchain would have
      to stop the world to compute).
    """
    from repro.metrics import comm_cost
    from repro.online import MappingSession, SessionConfig, generate_scenario

    quick = REPEATS == 1
    tg = stdlib.load("jacobi", rows=8, cols=8)
    topo = networks.hypercube(6)
    out: dict = {}

    n_events = 100 if quick else 400
    scn = generate_scenario(tg, topo, seed=10, n_events=n_events)
    session = MappingSession(tg, topo, SessionConfig(checkpoint_every=0))
    start = time.perf_counter()
    report = session.run(scn.events)
    elapsed = time.perf_counter() - start
    latencies = sorted(r.elapsed_s for r in report.records)
    out["steady_state"] = {
        "workload": f"jacobi8x8/hypercube:6, {n_events} mixed events",
        "steady_state_s": elapsed,
        "events_per_s": n_events / elapsed,
        "p50_ms": latencies[len(latencies) // 2] * 1e3,
        "p99_ms": latencies[min(len(latencies) - 1,
                                int(len(latencies) * 0.99))] * 1e3,
        "remaps": report.counters.get("remaps_triggered", 0),
        "swaps": report.counters.get("swaps", 0),
    }

    n = 60 if quick else 200
    rows: dict = {}
    for label, rates in (
        ("low", {"drift": 1.0, "fault": 0.5}),
        ("med", {"drift": 3.0, "fault": 1.5}),
        ("high", {"drift": 6.0, "fault": 3.0}),
    ):
        churn_scn = generate_scenario(tg, topo, seed=20, n_events=n,
                                      rates=rates)
        churn_session = MappingSession(
            tg, topo, SessionConfig(checkpoint_every=0)
        )
        churn_report = churn_session.run(churn_scn.events)
        served = comm_cost(churn_session.mapping)
        oracle = comm_cost(map_computation(
            churn_session.mapping.task_graph, churn_session.machine
        ))
        rows[label] = {
            "events": n,
            "rates": rates,
            "served_cost": served,
            "oracle_cost": oracle,
            "cost_vs_oracle": served / oracle if oracle > 0 else 1.0,
            "remaps": churn_report.counters.get("remaps_triggered", 0),
            "swaps": churn_report.counters.get("swaps", 0),
        }
    out["quality_vs_churn"] = rows
    return out


def iter_timings(payload: dict, prefix: str = "") -> dict[str, float]:
    """Flatten every ``*_s`` timing in the payload to ``section.key`` paths."""
    out: dict[str, float] = {}
    for key, value in payload.items():
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            out.update(iter_timings(value, f"{path}."))
        elif key.endswith("_s") and isinstance(value, (int, float)):
            out[path] = float(value)
    return out


def check_regressions(
    payload: dict, baseline: dict, max_ratio: float
) -> list[str]:
    """Timings regressing more than *max_ratio* vs. the baseline.

    A 10ms absolute slack is added on top of the ratio so sub-millisecond
    stages can't trip the gate on shared-runner scheduling noise.
    """
    current = iter_timings(payload)
    reference = iter_timings(baseline)
    failures = []
    for path, ref in sorted(reference.items()):
        if path.startswith(("perf_spans.", "baseline.")) or ref <= 0:
            continue
        now = current.get(path)
        if now is not None and now > ref * max_ratio + 0.010:
            failures.append(f"{path}: {now * 1e3:.2f}ms vs baseline "
                            f"{ref * 1e3:.2f}ms ({now / ref:.1f}x)")
    return failures


def main(argv=None) -> int:
    global REPEATS
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-o", "--output", type=Path, default=Path("BENCH_PR10.json"),
        help="trajectory file to write (default: BENCH_PR10.json)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help="optional JSON of pre-change timings to embed for comparison",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="single repeat per item (CI smoke mode)",
    )
    parser.add_argument(
        "--check", type=Path, default=None,
        help="baseline JSON to regression-check against (non-zero exit on "
             "any stage regressing more than --max-regression)",
    )
    parser.add_argument(
        "--max-regression", type=float, default=3.0,
        help="allowed slowdown factor vs. the --check baseline (default 3.0)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        REPEATS = 1

    # The legacy sections must measure real mapping work -- kill the
    # process-wide default artifact cache (pool workers inherit the env).
    # bench_cache() is unaffected: it passes its own explicit store.
    os.environ["REPRO_CACHE"] = "off"
    reset_default_cache()

    perf.reset()
    payload = {
        "meta": {
            "pr": 10,
            "description": "continuous-operation remap daemon: "
                           "event-driven mapping sessions with "
                           "incremental repair, drift-triggered "
                           "background remap, and migration-cost-gated "
                           "hot-swap",
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
            "quick": args.quick,
        },
        "sim_micro": bench_sim_micro(),
        "sim_kernel": bench_sim_kernel(),
        "e2e": bench_e2e(),
        "contraction": bench_contraction(),
        "embed": bench_embed(),
        "route": bench_route(),
        "metrics": bench_metrics(),
        "portfolio": bench_portfolio(),
        "resilience": bench_resilience(),
        "cache": bench_cache(),
        "runtime": bench_runtime(),
        "mapping_scale": bench_mapping_scale(),
        "machines": bench_machines(),
        "serving": bench_serving(),
        "online": bench_online(),
    }
    payload["perf_spans"] = {
        name: {"calls": s.calls, "total_s": s.total}
        for name, s in sorted(perf.stats().items())
    }
    payload["perf_counters"] = perf.counters()
    if args.baseline and args.baseline.exists():
        payload["baseline"] = json.loads(args.baseline.read_text())

    args.output.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    micro = payload["sim_micro"]
    print(f"sim micro ({micro['workload']}): "
          f"{micro['uncached_s'] * 1e3:.2f}ms -> {micro['memoized_s'] * 1e3:.2f}ms "
          f"({micro['speedup']:.1f}x, identical={micro['results_identical']})")
    for name, row in payload["sim_kernel"].items():
        print(f"sim kernel {name}: reference {row['reference_s'] * 1e3:.2f}ms "
              f"-> vector {row['vector_s'] * 1e3:.2f}ms "
              f"({row['speedup']:.1f}x, identical={row['results_identical']})")
    for name, row in payload["e2e"].items():
        print(f"e2e {name}: map {row['map_s'] * 1e3:.2f}ms, "
              f"simulate {row['simulate_s'] * 1e3:.2f}ms")
    for name, value in payload["contraction"].items():
        print(f"{name}: {value * 1e3:.2f}ms")
    for section in ("embed", "route", "metrics"):
        row = payload[section]
        fast_key = "vector_s" if "vector_s" in row else "table_s"
        print(f"{section} ({row['workload']}): "
              f"{row['reference_s'] * 1e3:.2f}ms -> {row[fast_key] * 1e3:.2f}ms "
              f"({row['speedup']:.1f}x, identical={row['results_identical']})")
    pf = payload["portfolio"]
    print(f"portfolio (8 pairs, {pf['workers']} workers): "
          f"serial {pf['serial_s'] * 1e3:.0f}ms -> parallel "
          f"{pf['parallel_s'] * 1e3:.0f}ms ({pf['speedup']:.1f}x, "
          f"deterministic={pf['deterministic']})")
    res = payload["resilience"]
    for name, row in res["repair"].items():
        print(f"resilience repair {name}: incremental "
              f"{row['repair_s'] * 1e3:.2f}ms vs full remap "
              f"{row['full_remap_s'] * 1e3:.2f}ms ({row['speedup']:.1f}x, "
              f"moved {row['moved_tasks']}, rerouted {row['rerouted']})")
    sw = res["sweep"]
    print(f"resilience sweep ({sw['faults']} faults): serial "
          f"{sw['serial_s'] * 1e3:.0f}ms -> parallel "
          f"{sw['parallel_s'] * 1e3:.0f}ms "
          f"({sw['throughput_faults_per_s']:.1f} faults/s, "
          f"deterministic={sw['deterministic']})")
    ca = payload["cache"]
    print(f"cache ({ca['workload']}): cold {ca['cold_s'] * 1e3:.2f}ms -> "
          f"memory {ca['warm_memory_s'] * 1e3:.3f}ms "
          f"({ca['speedup_memory']:.0f}x) / disk "
          f"{ca['warm_disk_s'] * 1e3:.3f}ms ({ca['speedup_disk']:.0f}x, "
          f"identical={ca['results_identical']})")
    rt = payload["runtime"]
    print(f"runtime overhead ({rt['overhead']['tasks']} tasks): "
          f"{rt['overhead']['per_task_overhead_us']:.1f}us/task supervised")
    cs = rt["chaos_sweep"]
    print(f"runtime chaos sweep ({cs['faults']} faults, "
          f"{cs['injected_crashes']} crashes + {cs['injected_transients']} "
          f"transients): {cs['failed_rows']} failed rows in "
          f"{cs['chaotic_s'] * 1e3:.0f}ms, survivors match clean="
          f"{cs['survivor_ranking_matches_clean']}")
    ck = rt["checkpoint"]
    print(f"runtime checkpoint: cold {ck['cold_s'] * 1e3:.0f}ms -> resumed "
          f"{ck['resumed_s'] * 1e3:.0f}ms ({ck['speedup']:.1f}x, "
          f"identical={ck['results_identical']})")
    for name, row in payload["mapping_scale"].items():
        ml = row["multilevel"]
        print(f"mapping scale {name} ({row['tasks']} tasks): multilevel "
              f"{ml['map_s']:.2f}s cost {ml['comm_cost']:.0f} "
              f"({ml['vs_best_other']:.1f}x better than next best); bfs "
              f"{row['bfs_baseline']['map_s']:.2f}s cost "
              f"{row['bfs_baseline']['comm_cost']:.0f}")
    mc = payload["machines"]
    rg = mc["rgg10k_fat_tree"]
    print(f"machines rgg10k: fat_tree16x16 "
          f"{rg['fat_tree16x16']['map_s']:.2f}s cost "
          f"{rg['fat_tree16x16']['comm_cost']:.0f} vs torus16x16 "
          f"{rg['torus16x16']['map_s']:.2f}s cost "
          f"{rg['torus16x16']['comm_cost']:.0f}")
    hs = mc["hotspot1024_capacity"]
    print(f"machines hotspot1024 ({hs['capacity']}): strict "
          f"{hs['strict']['map_s'] * 1e3:.0f}ms, "
          f"{hs['strict']['overflowing_procs']} overflows; ignore "
          f"{hs['ignore']['map_s'] * 1e3:.0f}ms, "
          f"{hs['ignore']['overflowing_procs']} overflows (worst "
          f"{hs['ignore']['worst_overflow']:.1f}x) -- capacity-aware "
          f"feasible={hs['capacity_aware_feasible']}, scalar overflows="
          f"{hs['scalar_bound_overflows']}")
    sv = payload["serving"]
    print(f"serving ({sv['workload']}): cold p50 {sv['cold']['p50_ms']:.1f}ms "
          f"-> warm p50 {sv['warm_sequential']['p50_ms']:.1f}ms "
          f"({sv['warm_over_cold_p50']:.1f}x), warm "
          f"{sv['warm']['throughput_rps']:.0f} req/s, hit rate "
          f"{sv['warm']['hit_rate']:.2f}, herd computed once="
          f"{sv['herd_computed_once']}, deterministic={sv['deterministic']}, "
          f"drain rc={sv['drain_rc']}")
    ol = payload["online"]["steady_state"]
    print(f"online steady state ({ol['workload']}): "
          f"{ol['events_per_s']:.0f} events/s, p50 {ol['p50_ms']:.2f}ms, "
          f"p99 {ol['p99_ms']:.2f}ms, remaps {ol['remaps']}, "
          f"swaps {ol['swaps']}")
    for label, row in payload["online"]["quality_vs_churn"].items():
        print(f"online churn {label}: served {row['served_cost']:.0f} vs "
              f"oracle {row['oracle_cost']:.0f} "
              f"({row['cost_vs_oracle']:.2f}x, remaps {row['remaps']}, "
              f"swaps {row['swaps']})")
    print(f"wrote {args.output}")

    if args.check and args.check.exists():
        failures = check_regressions(
            payload, json.loads(args.check.read_text()), args.max_regression
        )
        if failures:
            print(f"REGRESSIONS (> {args.max_regression}x):")
            for f in failures:
                print(f"  {f}")
            return 1
        print(f"regression check vs {args.check}: ok "
              f"(threshold {args.max_regression}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
