#!/usr/bin/env python
"""Benchmark runner: measures the pipeline's hot paths and emits a trajectory
JSON (``BENCH_PR1.json``) that future PRs regress against.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py [-o BENCH_PR1.json]

Measured sections
-----------------
* ``sim_micro``   -- the repeated-phase microbenchmark (jacobi 8x8, the
  compute/comm sweep repeated 100x) with the step cache on and off; the
  ratio is the headline memoization speedup.
* ``e2e``         -- map_computation + simulate wall-clock on the paper's
  benchmark workloads (nbody63, jacobi8x8, fft64).
* ``contraction`` -- MWM-Contract on the n-body 63-task graph and a scaled
  community graph (256 tasks / 64 clusters).
* ``perf_spans``  -- the repro.util.perf span totals recorded while the
  suite ran, so per-stage attribution lands in the trajectory too.

All timings are best-of-N wall-clock seconds (N=5 for sub-10ms items).
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.arch import networks
from repro.graph import families
from repro.graph.phase_expr import Rep
from repro.graph.taskgraph import TaskGraph
from repro.larcs import stdlib
from repro.mapper import map_computation
from repro.mapper.contraction import mwm_contract
from repro.sim import CostModel, simulate
from repro.util import perf

MODEL = CostModel(hop_latency=1.0, byte_time=0.5, exec_time=0.05)

WORKLOADS = [
    ("nbody63", lambda: families.nbody(63, volume=4.0),
     lambda: networks.hypercube(4)),
    ("jacobi8x8", lambda: stdlib.load("jacobi", rows=8, cols=8, msize=4),
     lambda: networks.mesh(4, 4)),
    ("fft64", lambda: stdlib.load("fft", m=6, msize=4),
     lambda: networks.hypercube(4)),
]


def best_of(fn, repeats: int = 5) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def communities(p: int) -> TaskGraph:
    """p heavy 4-task communities in a light ring (Fig 5's pattern scaled)."""
    n = 4 * p
    tg = TaskGraph(f"communities{n}")
    tg.add_nodes(range(n))
    ph = tg.add_comm_phase("comm")
    for c in range(p):
        base = 4 * c
        ph.add(base, base + 1, 20.0)
        ph.add(base + 2, base + 3, 18.0)
        ph.add(base + 1, base + 2, 15.0)
        ph.add((base + 3) % n, (base + 4) % n, 2.0)
    return tg


def bench_sim_micro() -> dict:
    tg = stdlib.load("jacobi", rows=8, cols=8, msize=4)
    tg.phase_expr = Rep(tg.phase_expr, 100)
    mapping = map_computation(tg, networks.mesh(4, 4))
    memoized = best_of(lambda: simulate(mapping, MODEL))
    uncached = best_of(lambda: simulate(mapping, MODEL, memoize=False))
    identical = simulate(mapping, MODEL) == simulate(mapping, MODEL, memoize=False)
    return {
        "workload": "jacobi8x8_x100",
        "memoized_s": memoized,
        "uncached_s": uncached,
        "speedup": uncached / memoized,
        "results_identical": identical,
    }


def bench_e2e() -> dict:
    out = {}
    for name, tg_fn, topo_fn in WORKLOADS:
        tg, topo = tg_fn(), topo_fn()
        out[name] = {
            "map_s": best_of(lambda: map_computation(tg, topo), 3),
        }
        mapping = map_computation(tg, topo)
        out[name]["simulate_s"] = best_of(lambda: simulate(mapping, MODEL), 3)
        out[name]["total_time"] = simulate(mapping, MODEL).total_time
    return out


def bench_contraction() -> dict:
    nbody = families.nbody(63, volume=4.0)
    big = communities(64)
    return {
        "mwm_nbody63_p16_s": best_of(lambda: mwm_contract(nbody, 16)),
        "mwm_communities256_p64_s": best_of(
            lambda: mwm_contract(big, 64, load_bound=4), 3
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-o", "--output", type=Path, default=Path("BENCH_PR1.json"),
        help="trajectory file to write (default: BENCH_PR1.json)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help="optional JSON of pre-change timings to embed for comparison",
    )
    args = parser.parse_args(argv)

    perf.reset()
    payload = {
        "meta": {
            "pr": 1,
            "description": "step-memoized sim kernel, incremental MWM "
                           "contraction, derived-structure caching",
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "sim_micro": bench_sim_micro(),
        "e2e": bench_e2e(),
        "contraction": bench_contraction(),
    }
    payload["perf_spans"] = {
        name: {"calls": s.calls, "total_s": s.total}
        for name, s in sorted(perf.stats().items())
    }
    payload["perf_counters"] = perf.counters()
    if args.baseline and args.baseline.exists():
        payload["baseline"] = json.loads(args.baseline.read_text())

    args.output.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    micro = payload["sim_micro"]
    print(f"sim micro ({micro['workload']}): "
          f"{micro['uncached_s'] * 1e3:.2f}ms -> {micro['memoized_s'] * 1e3:.2f}ms "
          f"({micro['speedup']:.1f}x, identical={micro['results_identical']})")
    for name, row in payload["e2e"].items():
        print(f"e2e {name}: map {row['map_s'] * 1e3:.2f}ms, "
              f"simulate {row['simulate_s'] * 1e3:.2f}ms")
    for name, value in payload["contraction"].items():
        print(f"{name}: {value * 1e3:.2f}ms")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
