"""E1 (Fig 2): the n-body task graph and its LaRCS description.

Regenerates the paper's running example at several problem sizes: the
chordal-ring task graph, the two communication phases, and the phase
expression ``((ring; compute1)^((n+1)/2); chordal; compute2)^s``, checking
the structural facts the figure shows (ring successor, half-way chordal
partner, phase-expression step count).  The benchmark times the LaRCS
compile, which the paper claims is cheap because the description is
compact and parametric.
"""

import pytest

from repro.graph import families
from repro.larcs import compile_larcs, stdlib

SIZES = [7, 15, 63, 255]


@pytest.mark.parametrize("n", SIZES)
def test_nbody_larcs_elaboration(benchmark, n):
    result = benchmark(lambda: compile_larcs(stdlib.NBODY, n=n))
    tg = result.task_graph

    # Fig 2a structure: each task has one ring and one chordal out-edge.
    assert tg.n_tasks == n
    assert len(tg.comm_phase("ring")) == n
    assert len(tg.comm_phase("chordal")) == n
    ring = tg.comm_function("ring")
    chordal = tg.comm_function("chordal")
    half = (n + 1) // 2
    for i in range(n):
        assert ring[i] == (i + 1) % n
        assert chordal[i] == (i + half) % n

    # Fig 2b phase expression: (n+1)/2 ring steps, then chordal; 2 execs.
    steps = tg.phase_expr.linearize()
    assert len(steps) == 2 * half + 2
    assert steps[0] == frozenset({"ring"})
    assert steps[2 * half] == frozenset({"chordal"})

    # The LaRCS route and the direct constructor agree edge-for-edge.
    fam = families.nbody(n)
    for phase in ("ring", "chordal"):
        assert set(tg.comm_phase(phase).pairs()) == set(
            fam.comm_phase(phase).pairs()
        )
    benchmark.extra_info["tasks"] = n
    benchmark.extra_info["edges"] = tg.n_edges


def test_nbody_fig2_printout(benchmark):
    """Print the Fig 2 reproduction for the 15-body instance."""
    tg = benchmark(lambda: stdlib.load("nbody", n=15))
    rows = ["n-body (n=15)  --  Fig 2 reproduction"]
    rows.append(f"  tasks: {tg.n_tasks}   phases: {list(tg.comm_phases)}")
    rows.append(f"  ring:    i -> (i+1) mod 15    e.g. 0->{tg.comm_function('ring')[0]}")
    rows.append(f"  chordal: i -> (i+8) mod 15    e.g. 0->{tg.comm_function('chordal')[0]}")
    rows.append(f"  phase expr: {tg.phase_expr}")
    print("\n".join(rows))
    assert tg.comm_function("chordal")[0] == 8
