"""E6 (Section 2 claim): LaRCS descriptions are an order of magnitude
smaller than the graphs they denote, and their size is independent of n.

"if the graph is regular, its LaRCS description is very compact -- an
order of magnitude smaller than the size of the graph" and "LaRCS code is
much more space-efficient than an adjacency matrix since it allows
parametric descriptions (i.e., size of the description is independent of
the number of nodes in the task graph)".

Measured here: bytes of LaRCS source (constant per program) vs bytes of
the explicit edge list the same bindings elaborate to (Theta(n)).
"""

import pytest

from repro.larcs import compile_larcs, stdlib

CASES = {
    "nbody": [dict(n=n) for n in (15, 63, 255, 1023)],
    "fft": [dict(m=m) for m in (4, 6, 8, 10)],
    "jacobi": [dict(rows=s, cols=s) for s in (4, 8, 16, 32)],
    "voting": [dict(m=m) for m in (3, 5, 7, 9)],
}


def explicit_size(tg):
    """Bytes of a plain-text edge list (src dst volume per line)."""
    lines = []
    for name, edge in tg.all_edges():
        lines.append(f"{name} {edge.src} {edge.dst} {edge.volume:g}")
    return len("\n".join(lines).encode())


@pytest.mark.parametrize("program", sorted(CASES))
def test_larcs_compactness(benchmark, program):
    source = stdlib.PROGRAMS[program]
    source_size = len(source.encode())

    def measure():
        rows = []
        for bindings in CASES[program]:
            tg = compile_larcs(source, **bindings).task_graph
            rows.append((bindings, tg.n_tasks, explicit_size(tg)))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"{program}: LaRCS source = {source_size} bytes (constant)")
    for bindings, n_tasks, size in rows:
        ratio = size / source_size
        print(f"  {bindings} -> {n_tasks} tasks, edge list {size} bytes "
              f"({ratio:.1f}x the source)")

    # Shape: the description is constant while the graph grows; at the
    # largest size the explicit representation is >= 10x the LaRCS source
    # (the paper's order of magnitude).
    largest = rows[-1][2]
    assert largest >= 10 * source_size
    # Monotone growth of the explicit form.
    sizes = [size for _, _, size in rows]
    assert sizes == sorted(sizes)


def test_compile_time_scales_with_output_not_source(benchmark):
    """Compiling bigger instances costs more, but the source never changes."""
    result = benchmark(lambda: compile_larcs(stdlib.NBODY, n=1023))
    assert result.task_graph.n_tasks == 1023
