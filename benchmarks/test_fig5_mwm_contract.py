"""E3 (Fig 5): Algorithm MWM-Contract on the 12-task / 3-processor example.

Regenerates the contraction example of Section 4.3: 12 tasks onto 3
processors under load bound B = 4.  The greedy stage works at cluster cap
B/2 = 2 and must reject the weight-15 edge; the matching stage then pairs
the six 2-task clusters into three 4-task clusters with **total IPC = 6**,
which the paper notes "happens to be optimal in this case".

Optimality is verified here by exhaustive search over all balanced
3-way partitions.
"""

from itertools import combinations

import pytest

from repro.graph.paper_examples import (
    FIG5_LOAD_BOUND,
    FIG5_OPTIMAL_IPC,
    FIG5_PROCESSORS,
    fig5_task_graph,
)
from repro.mapper.contraction import mwm_contract, total_ipc


def brute_force_optimal_ipc(tg, n_procs, bound):
    """Exhaustive minimum IPC over partitions into <= bound-sized clusters."""
    tasks = tg.nodes
    best = float("inf")

    def partitions(remaining):
        if not remaining:
            yield []
            return
        first = remaining[0]
        rest = remaining[1:]
        for k in range(0, bound):
            for extra in combinations(rest, k):
                cluster = [first, *extra]
                left = [t for t in rest if t not in extra]
                for others in partitions(left):
                    if len(others) + 1 <= n_procs:
                        yield [cluster, *others]

    for clusters in partitions(tasks):
        best = min(best, total_ipc(tg, clusters))
    return best


def test_fig5_contraction(benchmark):
    tg = fig5_task_graph()
    clusters = benchmark(
        lambda: mwm_contract(tg, FIG5_PROCESSORS, load_bound=FIG5_LOAD_BOUND)
    )
    ipc = total_ipc(tg, clusters)

    assert len(clusters) == 3
    assert all(len(c) == 4 for c in clusters)
    assert ipc == FIG5_OPTIMAL_IPC

    print("Fig 5 reproduction:")
    print(f"  12 tasks -> {FIG5_PROCESSORS} processors, B = {FIG5_LOAD_BOUND}")
    print(f"  clusters: {sorted(map(sorted, clusters))}")
    print(f"  total IPC = {ipc:g}  (paper: 6, optimal)")


def test_fig5_ipc_is_globally_optimal(benchmark):
    """Exhaustive check that IPC = 6 is the optimum, as the paper states."""
    tg = fig5_task_graph()
    best = benchmark.pedantic(
        brute_force_optimal_ipc,
        args=(tg, FIG5_PROCESSORS, FIG5_LOAD_BOUND),
        rounds=1,
        iterations=1,
    )
    assert best == FIG5_OPTIMAL_IPC


def test_fig5_greedy_rejects_weight15_edge(benchmark):
    """The greedy stage's size test: at cap B/2 = 2 the weight-15 edge
    (1, 2) cannot merge because both endpoint clusters hold 2 tasks."""
    from repro.mapper.contraction.mwm import _greedy_premerge

    tg = fig5_task_graph()

    def greedy():
        static = tg.static_graph()
        return _greedy_premerge(
            static, [{t} for t in tg.nodes], 2 * FIG5_PROCESSORS, FIG5_LOAD_BOUND / 2
        )

    clusters = benchmark(greedy)
    assert len(clusters) == 6
    assert all(len(c) <= 2 for c in clusters)
    owner = {t: i for i, c in enumerate(clusters) for t in c}
    # Tasks 1 and 2 (the weight-15 edge) are still in different clusters.
    assert owner[1] != owner[2]
    # ... but the heaviest edges merged: (0,1), (2,3), (4,5), (6,7), (8,9).
    for u, v in [(0, 1), (2, 3), (4, 5), (6, 7), (8, 9)]:
        assert owner[u] == owner[v]


@pytest.mark.parametrize("n,p", [(24, 6), (48, 12), (96, 24)])
def test_fig5_pattern_scaled(benchmark, n, p):
    """The same cluster-of-triangles pattern scaled up: MWM stays optimal.

    Build p 'communities' of 4 tasks (heavy internal edges) connected in a
    light ring; the optimal contraction is one community per processor.
    """
    from repro.graph.taskgraph import TaskGraph

    tg = TaskGraph(f"communities{n}")
    tg.add_nodes(range(n))
    ph = tg.add_comm_phase("comm")
    for c in range(p):
        base = 4 * c
        ph.add(base, base + 1, 20.0)
        ph.add(base + 2, base + 3, 18.0)
        ph.add(base + 1, base + 2, 15.0)
        ph.add((base + 3) % n, (base + 4) % n, 2.0)  # light ring between
    clusters = benchmark(lambda: mwm_contract(tg, p, load_bound=4))
    ipc = total_ipc(tg, clusters)
    assert ipc == 2.0 * p  # only the light ring crosses
    benchmark.extra_info["ipc"] = ipc
