"""E10 (Section 1 goal): OREGAMI mappings outperform naive mappings.

The paper's motivation: "Most commercial parallel processing systems today
rely on manual task assignment by the programmer and message routing that
does not utilize information about the communication patterns".  This
bench simulates complete executions and compares the OREGAMI pipeline
(structure-aware contraction + NN-Embed + MM-Route) against the naive
combination (random assignment + oblivious routing) on the paper's
workloads.  Expected shape: OREGAMI wins, and the gap grows with
communication weight.
"""

import pytest

from repro.arch import networks
from repro.graph import families
from repro.larcs import stdlib
from repro.mapper import map_computation
from repro.mapper.contraction import random_contract
from repro.mapper.embedding import assignment_from_clusters, random_embed
from repro.mapper.mapping import Mapping
from repro.mapper.routing import dimension_order_route
from repro.sim import CostModel, simulate

MODEL = CostModel(hop_latency=1.0, byte_time=0.5, exec_time=0.05)


def naive_mapping(tg, topo, seed=0):
    """Random balanced assignment + deterministic oblivious routing."""
    clusters = random_contract(tg, topo.n_processors, seed=seed)
    placement = random_embed(clusters, topo, seed=seed)
    assignment = assignment_from_clusters(clusters, placement)
    mapping = Mapping(tg, topo, assignment, provenance="naive")
    mapping.routes = dimension_order_route(tg, topo, assignment).routes
    return mapping


def naive_time(tg, topo, seeds=range(3)):
    """Average naive completion time over a few random draws."""
    times = [simulate(naive_mapping(tg, topo, s), MODEL).total_time for s in seeds]
    return sum(times) / len(times)


WORKLOADS = [
    ("nbody63_q4", lambda: families.nbody(63, volume=4.0), lambda: networks.hypercube(4)),
    ("jacobi8x8_mesh", lambda: stdlib.load("jacobi", rows=8, cols=8, msize=4), lambda: networks.mesh(4, 4)),
    ("fft64_q4", lambda: stdlib.load("fft", m=6, msize=4), lambda: networks.hypercube(4)),
    ("dnc64_mesh", lambda: stdlib.load("dnc", m=6, msize=4), lambda: networks.mesh(4, 4)),
]


@pytest.mark.parametrize("name,tg_fn,topo_fn", WORKLOADS)
def test_oregami_vs_naive(benchmark, name, tg_fn, topo_fn):
    tg, topo = tg_fn(), topo_fn()
    mapping = map_computation(tg, topo)
    t_oregami = benchmark(lambda: simulate(mapping, MODEL).total_time)
    t_naive = naive_time(tg, topo)
    speedup = t_naive / t_oregami
    print(f"{name}: OREGAMI {t_oregami:.1f} vs naive {t_naive:.1f} "
          f"(speedup {speedup:.2f}x, via {mapping.provenance})")
    benchmark.extra_info["speedup_vs_naive"] = round(speedup, 3)
    assert t_oregami <= t_naive, f"{name}: OREGAMI slower than naive"


def test_gap_grows_with_communication(benchmark):
    """Sweep message volume: heavier messages widen OREGAMI's win."""

    def sweep():
        out = []
        for vol in (1.0, 4.0, 16.0):
            tg = families.nbody(63, volume=vol)
            topo = networks.hypercube(4)
            mapping = map_computation(tg, topo)
            t_o = simulate(mapping, MODEL).total_time
            t_n = naive_time(tg, topo)
            out.append((vol, t_n / t_o))
        return out

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("volume sweep (speedup of OREGAMI over naive):")
    for vol, speedup in rows:
        print(f"  volume {vol:5.1f}: {speedup:.2f}x")
    speedups = [s for _, s in rows]
    assert speedups[-1] >= speedups[0] * 0.95  # non-decreasing (noise tol.)
    assert speedups[-1] > 1.0
