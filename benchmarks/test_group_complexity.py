"""E7 (Section 4.2.2 claim): the group machinery is O(|X|^2) with early halt.

"This is the dominant part of the computation, and hence the time
complexity of the algorithm is O(|X|^2)" and "we can halt the computation
as soon as the number of elements in any cycle exceeds |X|".

Measured: (a) the closure + regularity check on Cayley inputs (voting
rings) at growing |X| stays near-quadratic -- the work per size-doubling
grows by roughly 4x, not more; (b) non-Cayley inputs are rejected without
exploring more than |X| group elements.
"""

import time

import pytest

from repro.graph.properties import cayley_group_of
from repro.groups import Permutation, PermutationGroup, ClosureLimitExceeded
from repro.larcs import stdlib

SIZES = [3, 4, 5, 6, 7, 8]  # m: |X| = 2^m, 8 .. 256


@pytest.mark.parametrize("m", SIZES)
def test_cayley_detection_scaling(benchmark, m):
    tg = stdlib.load("voting", m=m)
    group = benchmark(lambda: cayley_group_of(tg))
    assert group is not None
    assert group.order == 1 << m
    benchmark.extra_info["n_tasks"] = 1 << m


def test_quadratic_shape(benchmark):
    """Directly compare timing across doublings: ~4x per doubling."""

    def measure():
        times = {}
        for m in (5, 6, 7, 8):
            tg = stdlib.load("voting", m=m)
            t0 = time.perf_counter()
            for _ in range(3):
                assert cayley_group_of(tg) is not None
            times[1 << m] = (time.perf_counter() - t0) / 3
        return times

    times = benchmark.pedantic(measure, rounds=1, iterations=1)
    print("Cayley detection time vs |X| (expect ~4x per doubling):")
    sizes = sorted(times)
    for a, b in zip(sizes, sizes[1:]):
        print(f"  |X| {a:>4} -> {b:>4}: {times[a]*1e3:8.3f} ms -> "
              f"{times[b]*1e3:8.3f} ms  (x{times[b]/times[a]:.1f})")
    # Loose shape check: growth per doubling stays well under cubic (8x),
    # allowing generous noise on small inputs.
    for a, b in zip(sizes[1:], sizes[2:]):
        assert times[b] / times[a] < 8.0


def test_early_halt_on_non_cayley(benchmark):
    """S_n generators explode to n! elements; the |X| cap halts at |X|+1."""
    n = 8
    gens = [
        Permutation.from_cycles([(0, 1)], n),
        Permutation([(i + 1) % n for i in range(n)]),
    ]

    def attempt():
        try:
            PermutationGroup.generate(gens, limit=n)
            return None
        except ClosureLimitExceeded as e:
            return e

    err = benchmark(attempt)
    assert err is not None  # S_8 (40320 elements) rejected after 9
