"""E8 (Fig 3): MAPPER's three-way dispatch and the cost of each path.

"contraction and embedding can often be accomplished in constant time by
hashing on the name of the task graph and the name of the network
topology" -- the canned path should be far cheaper than the group-theoretic
path, which in turn beats the general heuristics, while all three produce
valid mappings of the same computation.
"""

import pytest

from repro.arch import networks
from repro.graph import families
from repro.mapper import map_computation


def fft_like(n):
    """The FFT pattern without its family tag (forces non-canned paths)."""
    tg = families.fft_butterfly(n)
    tg.family = None
    return tg


@pytest.mark.parametrize("strategy", ["canned", "group", "mwm"])
def test_dispatch_path_cost(benchmark, strategy):
    """Same computation (the FFT pattern, 64 tasks -> Q3) through each path."""
    tg = families.fft_butterfly(64) if strategy == "canned" else fft_like(64)
    topo = networks.hypercube(3)
    mapping = benchmark(
        lambda: map_computation(tg, topo, strategy=strategy, route=False)
    )
    mapping.validate()
    assert len(mapping.used_procs()) == 8
    sizes = sorted(len(ts) for ts in mapping.clusters().values())
    benchmark.extra_info["cluster_sizes"] = sizes
    if strategy in ("canned", "group"):
        assert sizes == [8] * 8  # perfectly balanced


def test_auto_dispatch_order(benchmark):
    """Auto mode classifies the three canonical inputs correctly."""

    def classify_all():
        canned = map_computation(
            families.ring(16), networks.hypercube(3), route=False
        )
        group = map_computation(fft_like(16), networks.hypercube(3), route=False)
        tree = families.full_binary_tree(3)
        tree.family = None
        arbitrary = map_computation(tree, networks.hypercube(3), route=False)
        return canned.provenance, group.provenance, arbitrary.provenance

    provs = benchmark(classify_all)
    print(f"dispatch: nameable->{provs[0]}, cayley->{provs[1]}, tree->{provs[2]}")
    assert provs == ("canned", "group", "mwm")


def test_canned_lookup_is_cheap(benchmark):
    """The registry hit itself: a dict lookup plus the embedding function."""
    from repro.mapper.canned.registry import canned_assignment

    tg = families.ring(256)
    topo = networks.hypercube(4)
    assignment = benchmark(lambda: canned_assignment(tg, topo))
    assert len(assignment) == 256
