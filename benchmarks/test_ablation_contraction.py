"""Ablation: the design choices inside Algorithm MWM-Contract.

DESIGN.md calls out three load-bearing choices in the contraction pipeline:

1. the greedy pre-merge caps clusters at **B/2** (not B) so the matching
   stage can always pair any two clusters;
2. the matching stage uses **maximum weight** matching (not greedy pairing);
3. the matching is **max-cardinality** when the cluster count must shrink.

Each variant is disabled here in turn and the IPC damage measured on the
Fig-5-style community workloads and random graphs.
"""

import random

import pytest

from repro.graph.taskgraph import TaskGraph
from repro.mapper.contraction import mwm_contract, total_ipc
from repro.mapper.contraction.mwm import _cluster_graph, _greedy_premerge
from repro.util.matching import greedy_maximal_matching, max_weight_matching


def random_weighted_graph(n, density, seed):
    rng = random.Random(seed)
    tg = TaskGraph(f"rand{n}")
    tg.add_nodes(range(n))
    ph = tg.add_comm_phase("c")
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < density:
                ph.add(u, v, float(rng.randint(1, 20)))
    return tg


def contract_variant(tg, n_procs, bound, *, cap_full_b, greedy_pairing):
    """MWM-Contract with ablation switches.

    cap_full_b: greedy stage caps clusters at B instead of B/2.
    greedy_pairing: the matching stage uses greedy maximal matching by
    descending weight instead of maximum weight matching.
    """
    static = tg.static_graph()
    clusters = [{t} for t in tg.nodes]
    cap = bound if cap_full_b else bound / 2
    if len(clusters) > 2 * n_procs:
        clusters = _greedy_premerge(static, clusters, 2 * n_procs, cap)
    while len(clusters) > n_procs:
        weights = _cluster_graph(static, clusters)
        candidate = {}
        for i in range(len(clusters)):
            for j in range(i + 1, len(clusters)):
                if len(clusters[i]) + len(clusters[j]) <= bound:
                    candidate[(i, j)] = weights.get((i, j), 0.0)
        if not candidate:
            break
        if greedy_pairing:
            mate = greedy_maximal_matching(list(candidate), priority=candidate)
        else:
            mate = max_weight_matching(candidate, maxcardinality=True)
        if not mate:
            break
        for i, j in mate:
            clusters[i] |= clusters[j]
            clusters[j] = set()
        clusters = [c for c in clusters if c]
    return [sorted(c) for c in clusters if c]


def community_graph(p):
    """The Fig-5 community pattern scaled to p communities of 4."""
    n = 4 * p
    tg = TaskGraph(f"communities{n}")
    tg.add_nodes(range(n))
    ph = tg.add_comm_phase("comm")
    for c in range(p):
        base = 4 * c
        ph.add(base, base + 1, 20.0)
        ph.add(base + 2, base + 3, 18.0)
        ph.add(base + 1, base + 2, 15.0)
        ph.add((base + 3) % n, (base + 4) % n, 2.0)
    return tg


@pytest.mark.parametrize("p", [6, 12])
def test_full_algorithm_baseline(benchmark, p):
    tg = community_graph(p)
    clusters = benchmark(lambda: mwm_contract(tg, p, load_bound=4))
    assert total_ipc(tg, clusters) == 2.0 * p


@pytest.mark.parametrize("p", [6, 12])
def test_ablation_cap_and_pairing(benchmark, p):
    """Disable each choice; none may beat the full algorithm."""
    tg = community_graph(p)

    def run_all():
        full = total_ipc(tg, mwm_contract(tg, p, load_bound=4))
        cap_b = total_ipc(
            tg, contract_variant(tg, p, 4, cap_full_b=True, greedy_pairing=False)
        )
        greedy = total_ipc(
            tg, contract_variant(tg, p, 4, cap_full_b=False, greedy_pairing=True)
        )
        return full, cap_b, greedy

    full, cap_b, greedy = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print(f"p={p}: IPC full {full:g}, cap=B {cap_b:g}, greedy pairing {greedy:g}")
    assert full <= cap_b
    assert full <= greedy


def test_ablation_on_random_graphs(benchmark):
    graphs = [random_weighted_graph(32, 0.2, s) for s in range(6)]
    p = 4

    def run():
        rows = []
        for tg in graphs:
            full = total_ipc(tg, mwm_contract(tg, p))
            bound = -(-tg.n_tasks // p)
            greedy = total_ipc(
                tg,
                contract_variant(tg, p, bound, cap_full_b=False, greedy_pairing=True),
            )
            rows.append((full, greedy))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    wins = sum(1 for full, greedy in rows if full <= greedy)
    avg_full = sum(f for f, _ in rows) / len(rows)
    avg_greedy = sum(g for _, g in rows) / len(rows)
    print(f"random graphs: MWM pairing <= greedy pairing on {wins}/{len(rows)}; "
          f"avg IPC {avg_full:.1f} vs {avg_greedy:.1f}")
    assert avg_full <= avg_greedy * 1.02
