"""A3: end-to-end toolchain scalability.

The paper positions OREGAMI as a practical tool ("efficient polynomial
time heuristics", "constant time" canned lookups).  This bench measures
the complete pipeline -- LaRCS compile, dispatch, contraction, embedding,
MM-Route -- as the problem grows, for each MAPPER path, to confirm the
implementation stays polynomial and laptop-friendly at thousands of tasks.
"""

import pytest

from repro.arch import networks
from repro.larcs import stdlib
from repro.mapper import map_computation


@pytest.mark.parametrize("n,dim", [(127, 4), (255, 5), (511, 6), (1023, 6)])
def test_canned_path_scaling(benchmark, n, dim):
    """n-body through LaRCS + canned Gray embedding + MM-Route."""

    def pipeline():
        tg = stdlib.load("nbody", n=n)
        return map_computation(tg, networks.hypercube(dim))

    mapping = benchmark(pipeline)
    assert len(mapping.assignment) == n
    benchmark.extra_info["tasks"] = n


@pytest.mark.parametrize("rows", [8, 12, 16])
def test_mwm_path_scaling(benchmark, rows):
    """Jacobi through MWM-Contract + NN-Embed + MM-Route."""

    def pipeline():
        tg = stdlib.load("jacobi", rows=rows, cols=rows)
        return map_computation(tg, networks.mesh(4, 4), strategy="mwm")

    mapping = benchmark(pipeline)
    assert len(mapping.assignment) == rows * rows
    benchmark.extra_info["tasks"] = rows * rows


@pytest.mark.parametrize("m", [5, 6, 7])
def test_group_path_scaling(benchmark, m):
    """Voting through group-theoretic contraction."""

    def pipeline():
        tg = stdlib.load("voting", m=m)
        return map_computation(tg, networks.hypercube(3), strategy="group")

    mapping = benchmark(pipeline)
    assert len(mapping.used_procs()) == 8
    benchmark.extra_info["tasks"] = 1 << m


def test_largest_end_to_end(benchmark):
    """4096-task FFT on a 64-processor hypercube, full pipeline + routes."""

    def pipeline():
        tg = stdlib.load("fft", m=12)
        return map_computation(tg, networks.hypercube(6))

    mapping = benchmark.pedantic(pipeline, rounds=1, iterations=1)
    assert len(mapping.assignment) == 4096
    sizes = {len(ts) for ts in mapping.clusters().values()}
    assert sizes == {64}
