"""E5 (Section 4.1 claim): binomial tree -> square mesh, avg dilation <= 1.2.

"In [LRG+89] we show ... an embedding that has average dilation bounded by
1.2 for arbitrarily large binomial tree and mesh.  We conjecture that this
mapping is optimal with respect to average dilation."

Regenerates the dilation series for B_1 .. B_12 (up to 4096 tasks) and
checks the bound at every order; B_1..B_4 are spanning subgraphs of their
meshes (average dilation exactly 1).
"""

import pytest

from repro.arch import networks
from repro.graph import families
from repro.mapper.canned.binomial_mesh import (
    binomial_mesh_positions,
    binomial_to_mesh,
    mesh_dims,
)

ORDERS = list(range(1, 13))


def dilation_stats(order):
    tg = families.binomial_tree(order)
    h, w = mesh_dims(order)
    topo = networks.mesh(h, w)
    assignment = binomial_to_mesh(tg, topo)
    dils = [
        topo.distance(assignment[e.src], assignment[e.dst])
        for _, e in tg.all_edges()
    ]
    return sum(dils) / len(dils), max(dils)


@pytest.mark.parametrize("order", ORDERS)
def test_binomial_mesh_dilation_series(benchmark, order):
    avg, worst = benchmark(lambda: dilation_stats(order))
    benchmark.extra_info["avg_dilation"] = round(avg, 4)
    benchmark.extra_info["max_dilation"] = worst
    assert avg <= 1.2, f"B_{order}: average dilation {avg:.4f} > 1.2"
    if order <= 4:
        assert avg == 1.0


def test_binomial_mesh_dilation_table(benchmark):
    """Print the full series the way the tech report tabulates it."""

    def build():
        return {k: dilation_stats(k) for k in ORDERS}

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    print("binomial tree -> square mesh, average dilation (paper bound 1.2):")
    print("  order  tasks  mesh      avg dil  max dil")
    for k, (avg, worst) in table.items():
        h, w = mesh_dims(k)
        print(f"  B_{k:<4d} {2**k:<6d} {h}x{w:<6} {avg:<8.4f} {worst}")
    assert all(avg <= 1.2 for avg, _ in table.values())
    # The series approaches the bound from below as the trees grow.
    assert table[12][0] > table[4][0]


def test_embedding_is_bijection(benchmark):
    positions = benchmark(lambda: binomial_mesh_positions(10))
    h, w = mesh_dims(10)
    assert len(positions) == 1024
    assert len(set(positions.values())) == 1024
    assert all(0 <= r < h and 0 <= c < w for r, c in positions.values())
