"""E18: syntactic Cayley characterisation vs cycle-notation enumeration.

§4.2.2's closing direction: "syntactic characterizations ... will enable us
to avoid computation of the cycle notation, and improve the efficiency
significantly."  Measured: recognising a circulant/xor LaRCS program from
its AST is O(program), flat in |X|; the generic path's group enumeration is
O(|X|^2).  Both must agree on the generators.

Also E19: 'almost node symmetric' graphs (a Cayley core plus residual
non-bijective phases) still take the group path and internalise residual
traffic when a compatible subgroup exists.
"""

import pytest

from repro.graph import families
from repro.graph.properties import cayley_group_of, comm_functions
from repro.larcs import parse_larcs, stdlib
from repro.larcs.compiler import compile_larcs
from repro.mapper.contraction import group_contract
from repro.mapper.contraction.syntactic import syntactic_cayley

SIZES = [6, 8, 10]  # m: |X| = 64 .. 1024


@pytest.mark.parametrize("m", SIZES)
def test_syntactic_detection_flat_in_size(benchmark, m):
    program = parse_larcs(stdlib.BROADCAST_VOTING)
    result = benchmark(lambda: syntactic_cayley(program, {"m": m}))
    assert result.kind == "circulant"
    assert len(result.constants) == m
    benchmark.extra_info["n_tasks"] = 1 << m


@pytest.mark.parametrize("m", [6, 7, 8])
def test_generic_detection_quadratic(benchmark, m):
    """The baseline the syntactic path avoids: elaborate + enumerate."""

    def generic():
        tg = compile_larcs(stdlib.BROADCAST_VOTING, m=m).task_graph
        return cayley_group_of(tg)

    group = benchmark(generic)
    assert group is not None and group.order == 1 << m
    benchmark.extra_info["n_tasks"] = 1 << m


def test_syntactic_agrees_with_generic(benchmark):
    def both():
        program = parse_larcs(stdlib.NBODY)
        syn = syntactic_cayley(program, {"n": 31})
        tg = compile_larcs(stdlib.NBODY, n=31).task_graph
        return syn.generators(), comm_functions(tg)

    syn_gens, generic_gens = benchmark.pedantic(both, rounds=1, iterations=1)
    assert syn_gens == generic_gens


def test_e19_residual_contraction(benchmark):
    """Cayley core + broadcast residual: group path with residual scoring."""
    tg = families.ring(16, volume=0.001)
    heavy = tg.add_comm_phase("heavy")
    for i in range(8):
        heavy.add(i, i + 8, 50.0)
    tg.phase_expr = None
    tg.family = None

    gc = benchmark(lambda: group_contract(tg, 8, allow_residual=True))
    assert gc.residual_phases == ["heavy"]
    # The subgroup <+8> internalises the whole heavy phase.
    assert gc.residual_internal_volume == 400.0
    print(f"residual contraction: clusters {sorted(map(sorted, gc.clusters))[:3]}.. "
          f"internalised residual volume {gc.residual_internal_volume:g}")
