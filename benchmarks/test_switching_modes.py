"""E17: store-and-forward (NCUBE) vs cut-through (iPSC/2) switching.

The paper names both machines as OREGAMI targets; their routers differ in
exactly the way the simulator's two switching modes model.  Expected
shapes: on *long, uncontended* paths cut-through wins (it pays the volume
cost once, not per hop); under *contention* cut-through suffers because a
blocked message holds its entire path -- which is also why low-dilation,
low-contention mappings matter even more on an iPSC/2-class router.
"""

import pytest

from repro.arch import networks
from repro.graph import families
from repro.mapper import map_computation
from repro.mapper.mapping import Mapping
from repro.mapper.routing import mm_route
from repro.sim import CostModel, simulate


@pytest.mark.parametrize("volume", [2.0, 16.0, 64.0])
def test_cut_through_wins_on_long_paths(benchmark, volume):
    """A pipeline stretched over a chain: multi-hop, little sharing."""
    tg = families.ring(8, volume=volume)
    topo = networks.linear(8)  # wrap edge travels 7 hops
    mapping = map_computation(tg, topo, strategy="mwm")
    saf = CostModel(hop_latency=1.0, byte_time=0.5, exec_time=0.001)
    ct = CostModel(hop_latency=1.0, byte_time=0.5, exec_time=0.001,
                   switching="cut_through")
    t_saf = benchmark(lambda: simulate(mapping, saf).total_time)
    t_ct = simulate(mapping, ct).total_time
    print(f"long paths, volume {volume:5.1f}: store-and-forward {t_saf:.1f}, "
          f"cut-through {t_ct:.1f}")
    benchmark.extra_info["saf_over_ct"] = round(t_saf / t_ct, 3)
    assert t_ct <= t_saf


@pytest.mark.parametrize("volume", [1.0, 8.0, 64.0])
def test_contention_favours_store_and_forward(benchmark, volume):
    """The chordal-heavy n-body phase: shared links punish path holding."""
    tg = families.nbody(31, volume=volume)
    topo = networks.hypercube(3)
    mapping = map_computation(tg, topo)
    saf = CostModel(hop_latency=1.0, byte_time=0.5, exec_time=0.001)
    ct = CostModel(hop_latency=1.0, byte_time=0.5, exec_time=0.001,
                   switching="cut_through")
    t_saf = benchmark(lambda: simulate(mapping, saf).total_time)
    t_ct = simulate(mapping, ct).total_time
    print(f"contended, volume {volume:5.1f}: store-and-forward {t_saf:.1f}, "
          f"cut-through {t_ct:.1f} (saf/ct {t_saf / t_ct:.2f})")
    benchmark.extra_info["saf_over_ct"] = round(t_saf / t_ct, 3)
    assert t_saf <= t_ct  # path holding costs under contention


def test_dilation_penalty_under_each_mode(benchmark):
    """A scattered mapping hurts more (relatively) under cut-through."""
    tg = families.ring(16, volume=16.0)
    topo = networks.hypercube(4)
    good = map_computation(tg, topo)
    scattered = {i: (i * 5) % 16 for i in range(16)}
    bad = Mapping(tg, topo, scattered)
    bad.routes = mm_route(tg, topo, scattered).routes

    def run():
        out = {}
        for name, model in [
            ("saf", CostModel(exec_time=0.001)),
            ("ct", CostModel(exec_time=0.001, switching="cut_through")),
        ]:
            out[name] = (
                simulate(good, model).total_time,
                simulate(bad, model).total_time,
            )
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    saf_penalty = out["saf"][1] / out["saf"][0]
    ct_penalty = out["ct"][1] / out["ct"][0]
    print(f"scattered/gray completion ratio: store-and-forward "
          f"{saf_penalty:.2f}x, cut-through {ct_penalty:.2f}x")
    assert saf_penalty > 1.0 and ct_penalty > 1.0
