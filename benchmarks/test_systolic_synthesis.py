"""E9 (Section 4.2.1): affine recurrences onto systolic arrays.

The mapping methods "are efficient precisely because they treat the data
dependency of the algorithm as a function on the nodes of the graph" --
the syntactic detection never builds the task graph, so its cost is
independent of the problem size; the synthesis produces the classic
arrays (the n x n matmul array with the (1,1,1) schedule, linear
convolution arrays) with verified conflict-free space-time maps.
"""

import pytest

from repro.larcs import parse_larcs, stdlib
from repro.mapper.systolic import (
    convolution,
    detect_recurrence,
    matmul,
    synthesize,
)

CONV_LARCS = """
algorithm conv(n, k);
nodetype pt[0 .. n-1, 0 .. k-1];
comphase pipe pt(i, j) -> pt(i + 1, j);
comphase accum pt(i, j) -> pt(i, j + 1);
"""


@pytest.mark.parametrize("n", [50, 500, 5000])
def test_detection_cost_independent_of_size(benchmark, n):
    """Check 1-3 are syntactic: detection time must not grow with n."""
    program = parse_larcs(CONV_LARCS)
    rec = benchmark(lambda: detect_recurrence(program, {"n": n, "k": 4}))
    assert sorted(rec.dependencies) == [(0, 1), (1, 0)]
    benchmark.extra_info["n"] = n


@pytest.mark.parametrize("n", [3, 4, 6])
def test_matmul_synthesis(benchmark, n):
    arr = benchmark(lambda: synthesize(matmul(n)))
    assert arr.schedule == (1, 1, 1)
    assert arr.makespan == 3 * (n - 1) + 1
    assert arr.n_processors == n * n
    arr.verify()
    benchmark.extra_info["processors"] = arr.n_processors
    benchmark.extra_info["makespan"] = arr.makespan


def test_convolution_synthesis(benchmark):
    arr = benchmark(lambda: synthesize(convolution(16, 4)))
    arr.verify()
    topo = arr.as_topology()
    print(f"convolution array: {arr.n_processors} processors, "
          f"schedule {arr.schedule}, projection {arr.projection}, "
          f"makespan {arr.makespan}, utilisation {arr.utilization():.1%}")
    assert arr.n_processors <= 16  # a linear array, not the full 64 points


def test_jacobi_detected_but_unschedulable(benchmark):
    """Jacobi is uniform (detection succeeds) but has opposing dependences,
    so no linear schedule exists -- the correct systolic verdict for an
    iterative stencil written as a single recurrence."""
    from repro.mapper.systolic import NoScheduleError, find_schedule

    program = parse_larcs(stdlib.JACOBI)
    rec = benchmark(lambda: detect_recurrence(program, {"rows": 6, "cols": 6}))
    assert len(rec.dependencies) == 4
    with pytest.raises(NoScheduleError):
        find_schedule(rec)
