"""E12 (Section 4.4 claim): MM-Route achieves low link contention.

"Since each call to the maximal matching algorithm selects a given link at
most once, we have achieved a low level of link contention."  Measured
across the stdlib workloads on hypercubes and meshes: the worst per-phase
link load under MM-Route vs random shortest-path routing and deterministic
(e-cube style) oblivious routing.  Expected shape: MM-Route <= both, with
the oblivious router's hotspots clearly worse on permutation-heavy phases.
"""

import pytest

from repro.arch import networks
from repro.graph import families
from repro.larcs import stdlib
from repro.mapper import map_computation
from repro.mapper.routing import dimension_order_route, mm_route, random_route


def worst_phase_load(tg, topo, routes):
    """Max messages on any link within any single phase."""
    worst = 0
    for phase in tg.comm_phases:
        loads = {}
        for (ph, _), route in routes.items():
            if ph != phase:
                continue
            for a, b in zip(route, route[1:]):
                lid = topo.link_id(a, b)
                loads[lid] = loads.get(lid, 0) + 1
        worst = max(worst, max(loads.values(), default=0))
    return worst


WORKLOADS = [
    ("nbody31_q4", lambda: families.nbody(31), lambda: networks.hypercube(4)),
    ("fft64_q4", lambda: stdlib.load("fft", m=6), lambda: networks.hypercube(4)),
    ("voting32_q4", lambda: stdlib.load("voting", m=5), lambda: networks.hypercube(4)),
    ("jacobi8x8_mesh", lambda: stdlib.load("jacobi", rows=8, cols=8), lambda: networks.mesh(4, 4)),
    ("annealing6x6_mesh", lambda: stdlib.load("annealing", rows=6, cols=6), lambda: networks.mesh(3, 3)),
]


@pytest.mark.parametrize("name,tg_fn,topo_fn", WORKLOADS)
def test_contention_mm_vs_baselines(benchmark, name, tg_fn, topo_fn):
    tg, topo = tg_fn(), topo_fn()
    mapping = map_computation(tg, topo, route=False)
    assignment = mapping.assignment

    mm = benchmark(lambda: mm_route(tg, topo, assignment))
    mm_worst = worst_phase_load(tg, topo, mm.routes)
    rnd = random_route(tg, topo, assignment, seed=0)
    rnd_worst = worst_phase_load(tg, topo, rnd.routes)
    det = dimension_order_route(tg, topo, assignment)
    det_worst = worst_phase_load(tg, topo, det.routes)

    print(f"{name}: worst per-phase link load  "
          f"MM {mm_worst}  random {rnd_worst}  e-cube {det_worst}")
    benchmark.extra_info["mm"] = mm_worst
    benchmark.extra_info["random"] = rnd_worst
    benchmark.extra_info["ecube"] = det_worst
    assert mm_worst <= rnd_worst
    assert mm_worst <= det_worst


def test_contention_under_adversarial_permutation(benchmark):
    """A bit-reversal permutation phase: e-cube concentrates traffic,
    MM-Route spreads it."""
    from repro.graph.taskgraph import TaskGraph

    dim = 4
    n = 1 << dim
    tg = TaskGraph("bitrev")
    tg.add_nodes(range(n))
    ph = tg.add_comm_phase("rev")
    for i in range(n):
        j = int(format(i, f"0{dim}b")[::-1], 2)
        if i != j:
            ph.add(i, j, 1.0)
    topo = networks.hypercube(dim)
    assignment = {i: i for i in range(n)}

    mm = benchmark(lambda: mm_route(tg, topo, assignment))
    mm_worst = worst_phase_load(tg, topo, mm.routes)
    det_worst = worst_phase_load(
        tg, topo, dimension_order_route(tg, topo, assignment).routes
    )
    print(f"bit reversal on Q{dim}: MM {mm_worst} vs e-cube {det_worst}")
    assert mm_worst <= det_worst
