"""Microbenchmark for the step-memoized simulation kernel.

An iterative computation repeats the same synchronous step structure many
times (the paper's n-body sweeps, Jacobi relaxation rounds, ...), so the
simulator's per-step memoization should collapse a ``(steps)^k`` phase
expression to one event-loop evaluation per *distinct* step.  The
acceptance bar for PR 1: at least a 5x wall-clock win on a 100x-repeated
Jacobi sweep, with bit-identical results.

Memoization is an event-loop property, so the timed runs pin
``kernel="reference"``: under ``kernel="auto"`` the PR 6 batched numpy
kernel makes the *uncached* path so much faster that the memoization
ratio no longer measures what PR 1 promised (the ``sim_kernel`` section
of ``run_bench.py`` tracks that speedup instead).
"""

import time

from repro.arch import networks
from repro.graph.phase_expr import Rep
from repro.larcs import stdlib
from repro.mapper import map_computation
from repro.sim import CostModel, simulate

MODEL = CostModel(hop_latency=1.0, byte_time=0.5, exec_time=0.05)


def repeated_jacobi(reps=100):
    tg = stdlib.load("jacobi", rows=8, cols=8, msize=4)
    tg.phase_expr = Rep(tg.phase_expr, reps)
    return map_computation(tg, networks.mesh(4, 4))


def best_of(fn, repeats=5):
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def test_repeated_phase_speedup(benchmark):
    mapping = repeated_jacobi(100)
    memoized = benchmark(lambda: simulate(mapping, MODEL))
    plain = simulate(mapping, MODEL, memoize=False)
    assert memoized == plain  # every SimulationResult field identical

    t_memo = best_of(lambda: simulate(mapping, MODEL, kernel="reference"))
    t_plain = best_of(
        lambda: simulate(mapping, MODEL, memoize=False, kernel="reference")
    )
    speedup = t_plain / t_memo
    print(f"jacobi8x8 x100: memoized {t_memo * 1e3:.2f}ms vs "
          f"uncached {t_plain * 1e3:.2f}ms ({speedup:.1f}x)")
    benchmark.extra_info["speedup_vs_uncached"] = round(speedup, 2)
    assert speedup >= 5.0, f"memoization speedup only {speedup:.2f}x"


def test_speedup_grows_with_repetitions(benchmark):
    """More repetitions amortise better: 500x should beat 50x's ratio."""

    def ratios():
        out = []
        for reps in (50, 500):
            mapping = repeated_jacobi(reps)
            t_memo = best_of(
                lambda: simulate(mapping, MODEL, kernel="reference"), 3
            )
            t_plain = best_of(
                lambda: simulate(
                    mapping, MODEL, memoize=False, kernel="reference"
                ),
                3,
            )
            out.append((reps, t_plain / t_memo))
        return out

    rows = benchmark.pedantic(ratios, rounds=1, iterations=1)
    for reps, ratio in rows:
        print(f"  {reps:4d} repetitions: {ratio:.1f}x")
    assert rows[1][1] >= rows[0][1] * 0.8  # amortisation (noise-tolerant)
