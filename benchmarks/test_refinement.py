"""A2: the Kernighan-Lin refinement post-passes.

"As our research continues, we plan to replace and augment the algorithms
in the MAPPER library" (§4).  Measured: how much IPC the task-move/swap
pass recovers on top of MWM-Contract, and how much distance-weighted
communication the placement 2-opt recovers on top of NN-Embed, across
random and structured workloads -- plus the cost of the passes themselves.
"""

import random

import pytest

from repro.arch import networks
from repro.graph.taskgraph import TaskGraph
from repro.larcs import stdlib
from repro.mapper import map_computation
from repro.mapper.contraction import mwm_contract, total_ipc
from repro.mapper.embedding import nn_embed
from repro.mapper.embedding.nn_embed import cluster_weights
from repro.mapper.refine import refine_contraction, refine_embedding


def random_graph(n, density, seed):
    rng = random.Random(seed)
    tg = TaskGraph(f"r{n}")
    tg.add_nodes(range(n))
    ph = tg.add_comm_phase("c")
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < density:
                ph.add(u, v, float(rng.randint(1, 9)))
    return tg


@pytest.mark.parametrize("n,p", [(32, 4), (64, 8)])
def test_contraction_refinement_gain(benchmark, n, p):
    graphs = [random_graph(n, 0.15, s) for s in range(5)]
    bound = -(-n // p)

    def run():
        gains = []
        for tg in graphs:
            base = mwm_contract(tg, p)
            before = total_ipc(tg, base)
            after = total_ipc(tg, refine_contraction(tg, base, load_bound=bound))
            gains.append((before, after))
        return gains

    gains = benchmark.pedantic(run, rounds=1, iterations=1)
    avg_before = sum(b for b, _ in gains) / len(gains)
    avg_after = sum(a for _, a in gains) / len(gains)
    print(f"n={n} p={p}: avg IPC {avg_before:.1f} -> {avg_after:.1f} "
          f"({(1 - avg_after / avg_before):.1%} recovered)")
    benchmark.extra_info["recovered"] = round(1 - avg_after / avg_before, 4)
    assert all(a <= b for b, a in gains)


def test_embedding_refinement_gain(benchmark):
    tg = stdlib.load("jacobi", rows=8, cols=8)
    topo = networks.mesh(4, 4)
    clusters = mwm_contract(tg, 16)
    placement = nn_embed(tg, clusters, topo)

    def cost(p):
        w = cluster_weights(tg, clusters)
        return sum(v * topo.distance(p[i], p[j]) for (i, j), v in w.items())

    refined = benchmark(
        lambda: refine_embedding(tg, clusters, placement, topo)
    )
    before, after = cost(placement), cost(refined)
    print(f"jacobi 8x8 -> 4x4 mesh: weighted distance {before:g} -> {after:g}")
    assert after <= before


def test_end_to_end_refine_flag(benchmark):
    tg = random_graph(48, 0.12, 11)
    topo = networks.hypercube(3)

    refined = benchmark(
        lambda: map_computation(tg, topo, strategy="mwm", refine=True)
    )
    plain = map_computation(tg, topo, strategy="mwm")

    def ipc(m):
        return total_ipc(tg, [sorted(ts) for ts in m.clusters().values()])

    print(f"end-to-end: IPC plain {ipc(plain):g}, refined {ipc(refined):g}")
    assert ipc(refined) <= ipc(plain)
