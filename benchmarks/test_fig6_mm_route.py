"""E4 (Fig 6): Algorithm MM-Route on the 15-body problem / 8-node hypercube.

Regenerates the routing example of Section 4.4: the 15-body task graph is
embedded on the 8-processor hypercube, the chordal phase's messages get a
table of shortest-route choices (distance-2 pairs have exactly two
first-hop candidates, as in the paper's "links 4 then 12, or links 9 then
8"), and repeated maximal matchings assign messages to links so that each
matching round uses every link at most once.

Link numbers differ from the paper's (its numbering is explicitly
arbitrary); the reproduced shape is the choice structure and the
contention profile.
"""

import pytest

from repro.arch import networks
from repro.graph import families
from repro.mapper.canned.registry import canned_assignment
from repro.mapper.routing import dimension_order_route, mm_route


def setup_fig6():
    tg = families.nbody(15)
    topo = networks.hypercube(3)
    assignment = canned_assignment(tg, topo)
    return tg, topo, assignment


def link_loads(topo, routes, phase):
    loads = {}
    for (ph, _), route in routes.items():
        if ph != phase:
            continue
        for a, b in zip(route, route[1:]):
            lid = topo.link_id(a, b)
            loads[lid] = loads.get(lid, 0) + 1
    return loads


def test_fig6_route_table(benchmark):
    """The per-message table of shortest-route choices (Fig 6b)."""
    tg, topo, assignment = setup_fig6()

    def build_table():
        table = {}
        for idx, e in enumerate(tg.comm_phase("chordal").edges):
            src, dst = assignment[e.src], assignment[e.dst]
            routes = topo.shortest_routes(src, dst)
            table[(e.src, e.dst)] = [topo.route_links(r) for r in routes]
        return table

    table = benchmark(build_table)
    print("Fig 6b-style chordal route table (task pair -> link choices):")
    for (s, d), choices in sorted(table.items())[:6]:
        print(f"  {s}->{d}: {choices}")
    # Every distance-k pair has k! shortest routes on a hypercube.
    for (s, d), choices in table.items():
        dist = topo.distance(assignment[s], assignment[d])
        expected = {0: 1, 1: 1, 2: 2, 3: 6}[dist]
        assert len(choices) == expected


def test_fig6_mm_route_contention(benchmark):
    tg, topo, assignment = setup_fig6()
    result = benchmark(lambda: mm_route(tg, topo, assignment))

    # Every chordal message routed on a shortest path.
    for idx, e in enumerate(tg.comm_phase("chordal").edges):
        route = result.routes[("chordal", idx)]
        assert len(route) - 1 == topo.distance(assignment[e.src], assignment[e.dst])

    # Matching rounds: each round uses a link at most once, so the link
    # load is bounded by the total round count of the phase.
    for phase in ("ring", "chordal"):
        loads = link_loads(topo, result.routes, phase)
        if loads:
            assert max(loads.values()) <= sum(result.rounds[phase])
    print(f"matching rounds per hop step: {result.rounds}")
    loads = link_loads(topo, result.routes, "chordal")
    print(f"chordal per-link message counts: {dict(sorted(loads.items()))}")


def test_fig6_mm_vs_oblivious(benchmark):
    """MM-Route's phase-awareness vs deterministic oblivious routing."""
    tg, topo, assignment = setup_fig6()
    mm = mm_route(tg, topo, assignment)
    det = benchmark(lambda: dimension_order_route(tg, topo, assignment))
    mm_worst = max(link_loads(topo, mm.routes, "chordal").values())
    det_worst = max(link_loads(topo, det.routes, "chordal").values())
    print(f"worst chordal link load: MM-Route {mm_worst}, e-cube {det_worst}")
    assert mm_worst <= det_worst


@pytest.mark.parametrize("n,dim", [(31, 4), (63, 5), (127, 6)])
def test_fig6_scaled(benchmark, n, dim):
    """Larger n-body instances on larger cubes keep contention flat."""
    tg = families.nbody(n)
    topo = networks.hypercube(dim)
    assignment = canned_assignment(tg, topo)
    result = benchmark(lambda: mm_route(tg, topo, assignment))
    loads = link_loads(topo, result.routes, "chordal")
    benchmark.extra_info["max_chordal_link_load"] = max(loads.values())
    # Shape: the worst link carries a small constant number of messages,
    # far below the n messages a bad router could pile on one link.
    assert max(loads.values()) <= 8
