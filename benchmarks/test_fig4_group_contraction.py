"""E2 (Fig 4): group-theoretic contraction of the 8-node perfect broadcast.

Regenerates the worked example of Section 4.2.2 exactly: the three
communication functions in cycle notation, the eight group elements E0..E7,
the regular-action check, the subgroup {E0, E4} derived from comm3, the
four clusters {0,4} {1,5} {2,6} {3,7}, and the two comm3 messages
internalised per cluster.  The benchmark times the contraction, which the
paper bounds at O(|X|^2).
"""

import pytest

from repro.graph.paper_examples import fig4_generators_cycle_notation
from repro.graph.properties import comm_functions
from repro.larcs import stdlib
from repro.mapper.contraction import group_contract

EXPECTED_ELEMENTS = {
    "(0)(1)(2)(3)(4)(5)(6)(7)",
    "(01234567)",
    "(0246)(1357)",
    "(03614725)",
    "(04)(15)(26)(37)",
    "(05274163)",
    "(0642)(1753)",
    "(07654321)",
}


def test_fig4_generators(benchmark):
    tg = benchmark(lambda: stdlib.load("voting", m=3))
    perms = comm_functions(tg)
    assert tuple(str(p) for p in perms.values()) == fig4_generators_cycle_notation


def test_fig4_contraction(benchmark):
    tg = stdlib.load("voting", m=3)
    gc = benchmark(lambda: group_contract(tg, 4))

    # |G| = 8 = |X| and the element list matches the paper's E0..E7.
    assert gc.group.order == 8
    assert {str(g) for g in gc.group.elements} == EXPECTED_ELEMENTS
    assert gc.group.is_regular_action()

    # The subgroup is {E0, E4} (identity + comm3), it is normal, and the
    # clusters are the paper's Fig 4c.
    assert sorted(str(g) for g in gc.subgroup) == [
        "(0)(1)(2)(3)(4)(5)(6)(7)",
        "(04)(15)(26)(37)",
    ]
    assert gc.normal
    assert sorted(map(sorted, gc.clusters)) == [[0, 4], [1, 5], [2, 6], [3, 7]]
    assert gc.internalized == {"hop[0]": 0, "hop[1]": 0, "hop[2]": 2}

    print("Fig 4 reproduction:")
    print(f"  generators: {fig4_generators_cycle_notation}")
    print(f"  subgroup H: {sorted(str(g) for g in gc.subgroup)}  (normal: {gc.normal})")
    print(f"  clusters:   {gc.clusters}")
    print(f"  internalised per cluster: {gc.internalized}")


@pytest.mark.parametrize("m,p", [(4, 4), (4, 8), (5, 8), (6, 16)])
def test_fig4_scaled_instances(benchmark, m, p):
    """The same machinery at larger sizes: perfectly balanced contractions."""
    tg = stdlib.load("voting", m=m)
    gc = benchmark(lambda: group_contract(tg, p))
    n = 1 << m
    assert len(gc.clusters) == p
    assert all(len(c) == n // p for c in gc.clusters)
    # Sylow corollary: n/p is a power of two, so a contraction must exist
    # (which it did), and the best subgroup internalises the heaviest
    # generator traffic available.
    assert sum(gc.internalized.values()) > 0
    benchmark.extra_info["internalized"] = gc.internalized
