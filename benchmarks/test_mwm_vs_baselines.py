"""E11 ([Lo88] simulation results): MWM-Contract vs baseline contractions.

The paper's contraction algorithm was evaluated by simulation in [Lo88];
this bench regenerates the comparison on random weighted task graphs and
the structured workloads: total IPC of MWM-Contract vs random balanced
partition and BFS-block partition.  Expected shape: MWM <= BFS <= random
on structured graphs, MWM clearly below random everywhere.
"""

import random

import pytest

from repro.graph import families
from repro.graph.taskgraph import TaskGraph
from repro.larcs import stdlib
from repro.mapper.contraction import (
    bfs_contract,
    mwm_contract,
    random_contract,
    total_ipc,
)


def random_weighted_graph(n, density, seed):
    rng = random.Random(seed)
    tg = TaskGraph(f"rand{n}")
    tg.add_nodes(range(n))
    ph = tg.add_comm_phase("c")
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < density:
                ph.add(u, v, float(rng.randint(1, 20)))
    return tg


@pytest.mark.parametrize("n,p", [(24, 4), (48, 8), (96, 8)])
def test_mwm_vs_baselines_random_graphs(benchmark, n, p):
    graphs = [random_weighted_graph(n, 0.15, seed) for seed in range(5)]

    def run_mwm():
        return [total_ipc(tg, mwm_contract(tg, p)) for tg in graphs]

    mwm_ipcs = benchmark(run_mwm)
    rand_ipcs = [
        total_ipc(tg, random_contract(tg, p, seed=1)) for tg in graphs
    ]
    bfs_ipcs = [total_ipc(tg, bfs_contract(tg, p)) for tg in graphs]

    mwm_avg = sum(mwm_ipcs) / len(mwm_ipcs)
    rand_avg = sum(rand_ipcs) / len(rand_ipcs)
    bfs_avg = sum(bfs_ipcs) / len(bfs_ipcs)
    print(f"n={n} p={p}: avg IPC  MWM {mwm_avg:.1f}  BFS {bfs_avg:.1f}  "
          f"random {rand_avg:.1f}")
    benchmark.extra_info["mwm_over_random"] = round(mwm_avg / rand_avg, 3)
    assert mwm_avg < rand_avg


STRUCTURED = [
    ("jacobi8x8", lambda: stdlib.load("jacobi", rows=8, cols=8), 4),
    ("ring64", lambda: families.ring(64), 8),
    ("dnc64", lambda: stdlib.load("dnc", m=6), 8),
    ("fft32", lambda: stdlib.load("fft", m=5), 4),
]


@pytest.mark.parametrize("name,tg_fn,p", STRUCTURED)
def test_mwm_vs_baselines_structured(benchmark, name, tg_fn, p):
    tg = tg_fn()
    clusters = benchmark(lambda: mwm_contract(tg, p))
    mwm_ipc = total_ipc(tg, clusters)
    rand_ipc = min(
        total_ipc(tg, random_contract(tg, p, seed=s)) for s in range(3)
    )
    bfs_ipc = total_ipc(tg, bfs_contract(tg, p))
    print(f"{name}: IPC  MWM {mwm_ipc:g}  BFS {bfs_ipc:g}  random(best of 3) {rand_ipc:g}")
    benchmark.extra_info["ipc"] = mwm_ipc
    assert mwm_ipc <= rand_ipc
    # Structured graphs: MWM should also beat or match the locality baseline.
    assert mwm_ipc <= bfs_ipc * 1.25


def test_optimality_at_small_scale(benchmark):
    """n <= 2P: [Lo88] proves optimality; verify against brute force."""
    from itertools import combinations

    def brute(tg, p, bound):
        tasks = tg.nodes
        best = float("inf")

        def partitions(remaining, budget):
            if not remaining:
                yield []
                return
            first, rest = remaining[0], remaining[1:]
            for k in range(0, bound):
                for extra in combinations(rest, k):
                    left = [t for t in rest if t not in extra]
                    for others in partitions(left, budget - 1):
                        if budget >= 1:
                            yield [[first, *extra], *others]

        for clusters in partitions(tasks, p):
            if len(clusters) <= p:
                best = min(best, total_ipc(tg, clusters))
        return best

    def run():
        results = []
        for seed in range(4):
            tg = random_weighted_graph(8, 0.4, seed)
            mwm = total_ipc(tg, mwm_contract(tg, 4, load_bound=2))
            opt = brute(tg, 4, 2)
            results.append((mwm, opt))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for mwm, opt in results:
        assert mwm == opt, f"MWM {mwm} not optimal ({opt}) at n <= 2P"
    print(f"n<=2P optimality verified on {len(results)} random graphs")
