"""Benches for the Section 6 extensions implemented beyond the core system.

* E13 -- task synchrony sets: derived alignment vs naive label-order slots
  (start-time skew within synchrony sets).
* E14 -- dynamic spawning: online incremental placement vs offline
  MWM-Contract on the fully unfolded tree (IPC ratio).
* E15 -- aggregation topology selection: congestion-aware spanning tree vs
  congestion-blind tree (usage of the hottest link).
* E16 -- phase-shift migration: static single mapping vs per-segment
  mappings with migration, swept over task state size.
"""

import pytest

from repro.arch import networks
from repro.graph import families
from repro.graph.dynamic import IncrementalMapper, binomial_spawner, full_binary_spawner
from repro.larcs import stdlib
from repro.mapper import map_computation
from repro.mapper.aggregate import _existing_link_load, select_aggregation_tree
from repro.mapper.contraction.mwm import total_ipc
from repro.mapper.migration import evaluate_migration
from repro.mapper.embedding import assignment_from_clusters, nn_embed
from repro.mapper.mapping import Mapping
from repro.mapper.routing import mm_route
from repro.sched import (
    SynchronySets,
    derive_synchrony_sets,
    partner_misalignment,
)


def _label_order_sets(mapping):
    slots = {}
    for proc, tasks in mapping.clusters().items():
        for i, t in enumerate(sorted(tasks, key=repr)):
            slots[t] = i
    return SynchronySets(slots)


@pytest.mark.parametrize("n,dim", [(31, 3), (63, 4), (63, 3)])
def test_e13_synchrony_alignment(benchmark, n, dim):
    """Partner-aligned synchrony slots vs naive label-order slots.

    The mapping comes from random contraction + NN-Embed (clusters whose
    label order carries no information), the situation where coordinated
    scheduling matters: derived sets must place communication partners in
    the same local slot far more often.
    """
    from repro.mapper.contraction import random_contract

    tg = families.nbody(n)
    topo = networks.hypercube(dim)
    clusters = random_contract(tg, topo.n_processors, seed=2)
    placement = nn_embed(tg, clusters, topo)
    mapping = Mapping(tg, topo, assignment_from_clusters(clusters, placement))
    mapping.routes = mm_route(tg, topo, mapping.assignment).routes

    derived = benchmark(lambda: derive_synchrony_sets(mapping))
    derived_gap = partner_misalignment(mapping, derived)
    naive_gap = partner_misalignment(mapping, _label_order_sets(mapping))
    print(f"nbody{n} on Q{dim}: partner slot gap derived {derived_gap:.3f} "
          f"vs label-order {naive_gap:.3f}")
    benchmark.extra_info["derived"] = round(derived_gap, 3)
    benchmark.extra_info["label_order"] = round(naive_gap, 3)
    assert derived_gap <= naive_gap


@pytest.mark.parametrize("order", [5, 6, 7])
def test_e14_online_vs_offline_spawning(benchmark, order):
    pattern = binomial_spawner(order)
    tg = pattern.unfold()
    topo = networks.hypercube(3)

    online = benchmark(lambda: IncrementalMapper(topo).run(pattern))
    offline = map_computation(tg, topo, strategy="mwm")

    online_ipc = total_ipc(tg, list(online.clusters().values()))
    offline_ipc = total_ipc(tg, list(offline.clusters().values()))
    ratio = online_ipc / max(offline_ipc, 1.0)
    print(f"B_{order}: IPC online {online_ipc:g} vs offline {offline_ipc:g} "
          f"(ratio {ratio:.2f})")
    benchmark.extra_info["ipc_ratio"] = round(ratio, 3)
    # Online placement pays a bounded price for not knowing the future.
    assert ratio <= 4.0
    # And balances load perfectly when tasks divide processors evenly.
    sizes = [len(ts) for ts in online.clusters().values()]
    assert max(sizes) - min(sizes) <= 1


def test_e14_binary_tree_spawning(benchmark):
    pattern = full_binary_spawner(5)  # 63 tasks
    online = benchmark(lambda: IncrementalMapper(networks.hypercube(3)).run(pattern))
    online.validate(require_routes=True)
    sizes = sorted(len(ts) for ts in online.clusters().values())
    assert max(sizes) - min(sizes) <= 1


def test_e15_aggregation_selection(benchmark):
    mapping = map_computation(families.nbody(15), networks.hypercube(3))
    load = _existing_link_load(mapping)
    hot = max(load, key=load.get)

    def hot_usage(paths):
        return sum(
            1
            for path in paths.values()
            for a, b in zip(path, path[1:])
            if mapping.topology.link_id(a, b) == hot
        )

    aware = benchmark(lambda: select_aggregation_tree(mapping, 0, congestion_weight=10.0))
    blind = select_aggregation_tree(mapping, 0, congestion_weight=0.0)
    print(f"hot link {hot} usage: congestion-aware {hot_usage(aware)} "
          f"vs blind {hot_usage(blind)}")
    assert hot_usage(aware) <= hot_usage(blind)


@pytest.mark.parametrize("state_volume", [0.1, 2.0, 50.0])
def test_e16_migration_tradeoff(benchmark, state_volume):
    tg = families.nbody(31, volume=8.0)
    topo = networks.hypercube(4)
    segments = [{"ring", "compute1"}, {"chordal", "compute2"}]
    plan = benchmark.pedantic(
        lambda: evaluate_migration(tg, topo, segments, state_volume=state_volume),
        rounds=1,
        iterations=1,
    )
    print(f"state={state_volume}: static {plan.static_time:.1f}, "
          f"migratory {plan.migratory_time:.1f} "
          f"(migration cost {plan.migration_cost:.1f}) -> "
          f"{'migrate' if plan.worthwhile else 'stay static'}")
    benchmark.extra_info["worthwhile"] = plan.worthwhile
    assert plan.migration_cost >= 0


def test_e16_cost_monotone_in_state(benchmark):
    tg = families.nbody(15)
    topo = networks.hypercube(3)
    segments = [{"ring", "compute1"}, {"chordal", "compute2"}]

    def sweep():
        return [
            evaluate_migration(tg, topo, segments, state_volume=v).migration_cost
            for v in (0.1, 1.0, 10.0, 100.0)
        ]

    costs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert costs == sorted(costs)
