"""Shared test fixtures.

The pipeline's artifact cache persists results on disk (by default under
``~/.cache/repro``) precisely so new processes can reuse old work -- which
is the last thing a test run wants: a stale artifact computed by
yesterday's code could mask today's bug.  Every test therefore gets a
private cache directory, and the process-wide default cache is rebuilt
around it.  Tests that exercise the cache itself construct their own
:class:`repro.pipeline.ArtifactCache` or set the env knobs explicitly.
"""

import signal
import threading

import pytest

from repro.pipeline import cache as pipeline_cache

#: Per-test wall-clock ceiling (seconds).  The supervised runtime is in
#: the business of hangs -- a regression there would otherwise wedge the
#: whole suite.  ``pytest-timeout`` is not a dependency, so a plain
#: SIGALRM guard stands in for it where the platform has one.
_TEST_ALARM_S = 120


@pytest.fixture(autouse=True)
def _hang_guard():
    use_alarm = (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if use_alarm:
        def _blow(signum, frame):
            raise TimeoutError(
                f"test exceeded the {_TEST_ALARM_S}s hang guard"
            )

        previous = signal.signal(signal.SIGALRM, _blow)
        signal.setitimer(signal.ITIMER_REAL, _TEST_ALARM_S)
    try:
        yield
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, previous)


@pytest.fixture(autouse=True)
def _isolated_artifact_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    pipeline_cache.reset_default_cache()
    yield
    pipeline_cache.reset_default_cache()
