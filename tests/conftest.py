"""Shared test fixtures.

The pipeline's artifact cache persists results on disk (by default under
``~/.cache/repro``) precisely so new processes can reuse old work -- which
is the last thing a test run wants: a stale artifact computed by
yesterday's code could mask today's bug.  Every test therefore gets a
private cache directory, and the process-wide default cache is rebuilt
around it.  Tests that exercise the cache itself construct their own
:class:`repro.pipeline.ArtifactCache` or set the env knobs explicitly.
"""

import pytest

from repro.pipeline import cache as pipeline_cache


@pytest.fixture(autouse=True)
def _isolated_artifact_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    pipeline_cache.reset_default_cache()
    yield
    pipeline_cache.reset_default_cache()
