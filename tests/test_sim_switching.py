"""Tests for the store-and-forward vs cut-through switching modes."""

import pytest

from repro.arch import networks
from repro.graph import families
from repro.mapper import map_computation
from repro.sim import CostModel, simulate


class TestCostModelModes:
    def test_mode_validation(self):
        with pytest.raises(ValueError, match="switching"):
            CostModel(switching="wormhole")

    def test_cut_through_time_formula(self):
        m = CostModel(hop_latency=2.0, byte_time=0.5, switching="cut_through")
        assert m.cut_through_time(volume=10.0, hops=3) == 2.0 * 3 + 5.0

    def test_default_is_store_and_forward(self):
        assert CostModel().switching == "store_and_forward"


def chain_mapping():
    """A ring of 4 on a 4-chain: the wrap edge travels 3 hops."""
    tg = families.ring(4, volume=10.0)
    topo = networks.linear(4)
    return map_computation(tg, topo, strategy="mwm")


class TestCutThroughSemantics:
    def test_long_messages_favour_cut_through(self):
        # Large volume, multi-hop: cut-through pays latency per hop once
        # but volume once; store-and-forward pays volume per hop.
        m = chain_mapping()
        saf = CostModel(hop_latency=1.0, byte_time=1.0, exec_time=0.0)
        ct = CostModel(
            hop_latency=1.0, byte_time=1.0, exec_time=0.0, switching="cut_through"
        )
        t_saf = simulate(m, saf).total_time
        t_ct = simulate(m, ct).total_time
        assert t_ct < t_saf

    def test_single_hop_agrees(self):
        # One-hop messages behave identically in both modes.
        tg = families.ring(2, volume=5.0)
        topo = networks.ring(2)
        m = map_computation(tg, topo)
        saf = simulate(m, CostModel(exec_time=0.0)).total_time
        ct = simulate(
            m, CostModel(exec_time=0.0, switching="cut_through")
        ).total_time
        assert saf == pytest.approx(ct)

    def test_path_holding_serialises_sharing_messages(self):
        # Two messages sharing a link cannot overlap under cut-through.
        tg = families.star(3, volume=4.0)
        topo = networks.linear(3)  # 0-1-2; star centre forces sharing
        m = map_computation(tg, topo, strategy="mwm")
        ct = CostModel(hop_latency=1.0, byte_time=1.0, exec_time=0.0,
                       switching="cut_through")
        res = simulate(m, ct)
        # Busy time on the most used link reflects serialised occupancy.
        assert max(res.link_busy.values()) <= res.total_time + 1e-9

    def test_contention_still_matters(self):
        # A scattered embedding is still slower under cut-through.
        from repro.mapper.mapping import Mapping
        from repro.mapper.routing import mm_route

        tg = families.ring(8, volume=8.0)
        topo = networks.hypercube(3)
        good = map_computation(tg, topo)
        scattered = {i: (i * 3) % 8 for i in range(8)}
        bad = Mapping(tg, topo, scattered)
        bad.routes = mm_route(tg, topo, scattered).routes
        ct = CostModel(exec_time=0.001, switching="cut_through")
        assert simulate(good, ct).total_time < simulate(bad, ct).total_time

    def test_metrics_accept_cut_through_model(self):
        from repro.metrics import analyze

        m = chain_mapping()
        metrics = analyze(m, CostModel(switching="cut_through"))
        assert metrics.estimated_completion_time > 0
