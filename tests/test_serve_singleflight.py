"""Single-flight and disk-tier guarantees of the shared artifact cache.

The serving acceptance bar: a thundering herd of identical requests --
across handler *threads* and across *processes* sharing one cache
directory -- runs the pipeline exactly once, every waiter sees the
leader's result (or its error), and the disk tier stays inside its byte
budget by evicting least-recently-used entries.  Corruption of any
on-disk artifact degrades to a miss, never to a wrong answer.
"""

import multiprocessing
import os
import threading
import time

import pytest

from repro.pipeline.cache import ArtifactCache, disk_stats

KEY = "the-contended-key"


# ----------------------------------------------------------------------
# single flight: threads
# ----------------------------------------------------------------------
class TestThreadHerd:
    def test_herd_computes_exactly_once(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        calls = []
        started = threading.Barrier(16)

        def compute():
            calls.append(1)
            time.sleep(0.15)
            return {"payload": 42}

        results = []

        def worker():
            started.wait()
            results.append(cache.get_or_compute(KEY, compute))

        threads = [threading.Thread(target=worker) for _ in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(calls) == 1
        assert len(results) == 16
        assert all(value == {"payload": 42} for value, _ in results)
        stats = cache.stats()
        assert stats["computed"] == 1
        # every caller either computed, waited on the flight, or hit a tier
        tiers = [tier for _, tier in results]
        assert tiers.count("computed") == 1
        assert (
            stats["singleflight_waits"]
            + stats["hits_memory"] + stats["hits_disk"] + 1
            >= 16
        )

    def test_leader_error_shared_then_not_cached(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        gate = threading.Barrier(4)
        boom = RuntimeError("compute exploded")

        def bad_compute():
            time.sleep(0.1)
            raise boom

        errors = []

        def worker():
            gate.wait()
            try:
                cache.get_or_compute(KEY, bad_compute)
            except RuntimeError as exc:
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # every caller saw the one failure, and nothing was poisoned
        assert len(errors) == 4
        assert all(exc is boom for exc in errors)
        assert cache.get(KEY) is None
        # the key recovers: the next compute succeeds and is cached
        value, tier = cache.get_or_compute(KEY, lambda: "fine")
        assert (value, tier) == ("fine", "computed")
        assert cache.get(KEY) == ("fine", "memory")

    def test_bit_identical_value_shared_not_copied(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        gate = threading.Barrier(8)
        results = []

        def compute():
            time.sleep(0.1)
            return {"big": list(range(100))}

        def worker():
            gate.wait()
            results.append(cache.get_or_compute(KEY, compute)[0])

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        first = results[0]
        assert all(value == first for value in results)


# ----------------------------------------------------------------------
# single flight: threads x processes
# ----------------------------------------------------------------------
def _process_herd(directory, barrier, queue):
    cache = ArtifactCache(directory)
    calls = []

    def compute():
        calls.append(1)
        time.sleep(0.3)
        return {"answer": 42, "detail": list(range(50))}

    barrier.wait()
    results = []

    def worker():
        results.append(cache.get_or_compute(KEY, compute))

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    queue.put((len(calls), [value for value, _ in results]))


class TestProcessHerd:
    def test_threads_and_processes_compute_exactly_once(self, tmp_path):
        """3 processes x 4 threads on one key: one computation, total."""
        ctx = multiprocessing.get_context("fork")
        queue = ctx.Queue()
        barrier = ctx.Barrier(3)
        procs = [
            ctx.Process(target=_process_herd,
                        args=(str(tmp_path), barrier, queue))
            for _ in range(3)
        ]
        for p in procs:
            p.start()
        total_calls = 0
        values = []
        for _ in procs:
            calls, vals = queue.get(timeout=60)
            total_calls += calls
            values.extend(vals)
        for p in procs:
            p.join(timeout=30)
        assert total_calls == 1
        assert len(values) == 12
        first = values[0]
        assert all(value == first for value in values)

    def test_stale_lock_is_broken(self, tmp_path, monkeypatch):
        """A lock file abandoned by a crashed leader must not wedge waiters."""
        import repro.pipeline.cache as cache_mod

        monkeypatch.setattr(cache_mod, "_LOCK_STALE_S", 0.2)
        cache = ArtifactCache(str(tmp_path))
        lock = os.path.join(str(tmp_path), f"{KEY}.pkl.lock")
        os.makedirs(str(tmp_path), exist_ok=True)
        with open(lock, "w") as fh:
            fh.write("99999")
        old = time.time() - 10
        os.utime(lock, (old, old))
        begin = time.monotonic()
        value, tier = cache.get_or_compute(KEY, lambda: "rescued")
        assert value == "rescued"
        assert time.monotonic() - begin < 5
        assert not os.path.exists(lock)


# ----------------------------------------------------------------------
# the size-bounded disk tier
# ----------------------------------------------------------------------
def _entry_size(directory: str) -> int:
    """The on-disk size of one cached entry (they are all alike here)."""
    probe = ArtifactCache(directory)
    probe.put("size-probe", {"pad": list(range(100))})
    size = os.path.getsize(os.path.join(directory, "size-probe.pkl"))
    probe.clear(disk=True)
    return size


class TestDiskLRU:
    def test_byte_budget_evicts_least_recently_used(self, tmp_path):
        directory = str(tmp_path)
        size = _entry_size(directory)
        cache = ArtifactCache(directory, max_disk_bytes=3 * size)
        payload = {"pad": list(range(100))}
        cache.put("a", payload)
        time.sleep(0.01)
        cache.put("b", payload)
        time.sleep(0.01)
        cache.put("c", payload)
        # refresh "a" so "b" is now the least recently used
        assert cache.get("a") is not None
        time.sleep(0.01)
        cache.put("d", payload)
        on_disk = {
            name[:-4] for name in os.listdir(directory)
            if name.endswith(".pkl")
        }
        assert on_disk == {"a", "c", "d"}
        assert cache.stats()["evictions_disk"] == 1
        assert disk_stats(directory)["bytes"] <= 3 * size

    def test_oversized_entry_is_dropped_immediately(self, tmp_path):
        directory = str(tmp_path)
        cache = ArtifactCache(directory, max_disk_bytes=10)
        cache.put("huge", {"pad": list(range(1000))})
        assert disk_stats(directory)["entries"] == 0
        # the memory tier still serves it
        assert cache.get("huge") is not None

    def test_unbounded_by_default(self, tmp_path):
        directory = str(tmp_path)
        cache = ArtifactCache(directory)
        for index in range(10):
            cache.put(f"k{index}", {"pad": list(range(200))})
        assert disk_stats(directory)["entries"] == 10
        assert cache.stats()["evictions_disk"] == 0

    def test_eviction_survives_process_restart(self, tmp_path):
        """Recency persists in the index, so a new process evicts right."""
        directory = str(tmp_path)
        size = _entry_size(directory)
        first = ArtifactCache(directory, max_disk_bytes=3 * size)
        payload = {"pad": list(range(100))}
        first.put("a", payload)
        time.sleep(0.01)
        first.put("b", payload)
        time.sleep(0.01)
        first.put("c", payload)
        assert first.get("a") is not None  # refresh recency, persists below
        first.put("refresh-flush", payload)  # forces an index rewrite
        time.sleep(0.01)
        second = ArtifactCache(directory, max_disk_bytes=2 * size)
        second.put("d", payload)
        survivors = {
            name[:-4] for name in os.listdir(directory)
            if name.endswith(".pkl")
        }
        assert "d" in survivors
        assert "b" not in survivors  # oldest unrefreshed entry went first


class TestCorruption:
    def test_truncated_entry_is_a_miss(self, tmp_path):
        directory = str(tmp_path)
        cache = ArtifactCache(directory)
        cache.put(KEY, {"fine": True})
        path = os.path.join(directory, f"{KEY}.pkl")
        with open(path, "wb") as fh:
            fh.write(b"\x80\x04 truncated garbage")
        fresh = ArtifactCache(directory)  # cold memory tier
        assert fresh.get(KEY) is None
        assert fresh.stats()["misses"] == 1

    def test_corrupt_index_rebuilt_from_scan(self, tmp_path):
        directory = str(tmp_path)
        cache = ArtifactCache(directory)
        cache.put("a", 1)
        cache.put("b", 2)
        with open(os.path.join(directory, "index.json"), "w") as fh:
            fh.write("{ not json at all")
        fresh = ArtifactCache(directory)
        assert fresh.get("a") == (1, "disk")
        assert fresh.stats()["disk"]["entries"] == 2

    def test_wrong_key_envelope_is_a_miss(self, tmp_path):
        """An entry whose envelope names another key never leaks through."""
        directory = str(tmp_path)
        cache = ArtifactCache(directory)
        cache.put("real", "value")
        os.replace(
            os.path.join(directory, "real.pkl"),
            os.path.join(directory, "imposter.pkl"),
        )
        fresh = ArtifactCache(directory)
        assert fresh.get("imposter") is None

    def test_clear_disk_removes_entries_index_and_locks(self, tmp_path):
        directory = str(tmp_path)
        cache = ArtifactCache(directory)
        cache.put("a", 1)
        with open(os.path.join(directory, "a.pkl.lock"), "w") as fh:
            fh.write("1")
        cache.clear(disk=True)
        assert disk_stats(directory)["entries"] == 0
        assert os.listdir(directory) == []
        assert cache.get("a") is None


class TestStats:
    def test_hit_rate_counts_waits_as_hits(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        cache.get_or_compute(KEY, lambda: 1)   # miss + computed
        cache.get(KEY)                          # memory hit
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["hits_memory"] == 1
        assert stats["hit_rate"] == pytest.approx(0.5)

    def test_memory_capacity_bound(self, tmp_path):
        cache = ArtifactCache(str(tmp_path), capacity=2)
        for index in range(4):
            cache.put(f"k{index}", index)
        stats = cache.stats()
        assert stats["memory_entries"] == 2
        assert stats["evictions_memory"] == 2
        # evicted from memory but still on disk
        assert cache.get("k0") == (0, "disk")
