"""Tests for the multilevel strategy and delta-gain refinement (PR 7).

Covers the opt-in ``multilevel`` mapping strategy (coarsen / pack /
uncoarsen-and-refine), the standalone :func:`repro.mapper.refine.refine`
delta-gain pass, the widened ``MapConfig.refine`` knob, and the
``map.*`` perf counters surfaced through the metrics JSON.
"""

import collections

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import networks
from repro.graph import TaskGraph, families
from repro.larcs import stdlib
from repro.mapper import map_computation
from repro.mapper.contraction.multilevel import multilevel_assignment
from repro.mapper.refine import refine
from repro.metrics import analyze, comm_cost
from repro.metrics.analysis import metrics_to_dict
from repro.pipeline.config import MapConfig, RunConfig


def loads(assignment):
    out = collections.Counter()
    for proc in assignment.values():
        out[proc] += 1
    return out


def check_valid(tg, topology, assignment, bound):
    assert set(assignment) == set(tg.nodes)
    assert set(assignment.values()) <= set(topology.processors)
    assert max(loads(assignment).values()) <= bound


class TestMultilevelAssignment:
    def test_small_mesh_valid_and_balanced(self):
        tg = stdlib.load("jacobi", rows=8, cols=8)
        topo = networks.hypercube(4)
        assignment, stats = multilevel_assignment(tg, topo)
        check_valid(tg, topo, assignment, bound=4)
        assert stats["map.coarsen_levels"] >= 1

    def test_respects_explicit_load_bound(self):
        tg = stdlib.load("jacobi", rows=6, cols=6)
        topo = networks.hypercube(3)
        assignment, _ = multilevel_assignment(tg, topo, load_bound=6)
        check_valid(tg, topo, assignment, bound=6)

    def test_infeasible_bound_raises(self):
        tg = stdlib.load("jacobi", rows=4, cols=4)
        with pytest.raises(ValueError):
            multilevel_assignment(tg, networks.hypercube(2), load_bound=3)

    def test_deterministic_across_runs(self):
        tg = families.random_geometric(300, seed=7)
        topo = networks.torus(4, 4)
        a1, s1 = multilevel_assignment(tg, topo)
        a2, s2 = multilevel_assignment(tg, topo)
        assert a1 == a2
        assert s1 == s2

    def test_fewer_tasks_than_procs(self):
        tg = families.ring(5)
        topo = networks.hypercube(3)
        assignment, _ = multilevel_assignment(tg, topo)
        check_valid(tg, topo, assignment, bound=1)

    def test_matches_or_beats_mwm_on_kilotask_grid(self):
        """The PR 7 acceptance bar: no worse than the portfolio's best."""
        tg = stdlib.load("jacobi", rows=25, cols=40)  # 1000 tasks
        topo = networks.hypercube(6)
        ml = map_computation(tg, topo, strategy="multilevel", route=False)
        mwm = map_computation(
            tg, topo, strategy="mwm", route=False, refine=True
        )
        assert comm_cost(ml) <= comm_cost(mwm)


class TestMultilevelStrategy:
    def test_forced_via_dispatch(self):
        tg = stdlib.load("jacobi", rows=6, cols=6)
        m = map_computation(tg, networks.hypercube(4), strategy="multilevel")
        assert m.provenance == "multilevel"
        m.validate(require_routes=True)

    def test_not_in_auto_chain(self):
        # auto on a canned-eligible input must not pick multilevel
        m = map_computation(families.ring(8), networks.hypercube(3))
        assert m.provenance == "canned"

    def test_stats_flow_to_mapping(self):
        tg = stdlib.load("jacobi", rows=6, cols=6)
        m = map_computation(tg, networks.hypercube(4), strategy="multilevel")
        assert m.map_stats["map.coarsen_levels"] >= 1
        assert "map.refine_moves" in m.map_stats

    def test_counters_surface_in_metrics_json(self):
        tg = stdlib.load("jacobi", rows=6, cols=6)
        m = map_computation(tg, networks.hypercube(4), strategy="multilevel")
        out = metrics_to_dict(analyze(m), m)
        counters = out["overall"]["map_counters"]
        assert counters["map.coarsen_levels"] >= 1
        assert counters["map.refine_moves"] >= 0

    def test_other_strategies_emit_no_counters(self):
        m = map_computation(families.ring(8), networks.hypercube(3))
        assert "map_counters" not in metrics_to_dict(analyze(m), m)["overall"]


class TestStandaloneRefine:
    def test_never_worsens_and_keeps_bound(self):
        tg = stdlib.load("jacobi", rows=6, cols=6)
        topo = networks.hypercube(4)
        base = map_computation(tg, topo, strategy="mwm", route=False)
        out = refine(base, "delta_gain")
        assert comm_cost(out) <= comm_cost(base)
        bound = max(loads(base.assignment).values())
        check_valid(tg, topo, out.assignment, bound)
        assert out.provenance == base.provenance + "+delta_gain"
        # input untouched
        assert base.provenance.endswith("mwm")

    def test_unknown_method_rejected(self):
        base = map_computation(
            families.ring(8), networks.hypercube(3), route=False
        )
        with pytest.raises(ValueError):
            refine(base, "simulated_annealing")

    def test_refine_stats_recorded(self):
        tg = stdlib.load("jacobi", rows=6, cols=6)
        base = map_computation(tg, networks.hypercube(4), strategy="mwm",
                               route=False)
        out = refine(base, "delta_gain")
        assert out.map_stats["map.refine_gain"] >= 0.0


def random_problem():
    @st.composite
    def build(draw):
        n = draw(st.integers(min_value=2, max_value=24))
        tg = TaskGraph("rand")
        tg.add_nodes(range(n))
        ph = tg.add_comm_phase("c")
        for _ in range(draw(st.integers(0, 3 * n))):
            u = draw(st.integers(0, n - 1))
            v = draw(st.integers(0, n - 1))
            if u != v:
                ph.add(u, v, float(draw(st.integers(1, 9))))
        dim = draw(st.integers(min_value=1, max_value=3))
        return tg, networks.hypercube(dim)

    return build()


@given(problem=random_problem())
@settings(max_examples=40, deadline=None)
def test_delta_gain_property_monotone_and_valid(problem):
    """Refinement never raises aggregate comm cost or breaks the bound."""
    tg, topo = problem
    base = map_computation(tg, topo, strategy="mwm", route=False)
    out = refine(base, "delta_gain")
    assert comm_cost(out) <= comm_cost(base) + 1e-9
    check_valid(tg, topo, out.assignment, max(loads(base.assignment).values()))


@given(problem=random_problem())
@settings(max_examples=25, deadline=None)
def test_multilevel_property_valid_and_deterministic(problem):
    tg, topo = problem
    a1, _ = multilevel_assignment(tg, topo)
    a2, _ = multilevel_assignment(tg, topo)
    assert a1 == a2
    import math

    bound = math.ceil(tg.n_tasks / topo.n_processors)
    check_valid(tg, topo, a1, bound)


class TestRefineConfigKnob:
    @pytest.mark.parametrize("value", [False, True, "none", "kl", "delta_gain"])
    def test_round_trip(self, value):
        cfg = RunConfig(map=MapConfig(refine=value))
        assert RunConfig.from_dict(cfg.to_dict()) == cfg
        assert cfg.fingerprint()  # fingerprintable

    def test_bool_fingerprints_are_stable_vs_strings(self):
        # the boolean forms predate PR 7; strings must not collide
        fps = {
            RunConfig(map=MapConfig(refine=v)).fingerprint()
            for v in (False, True, "none", "kl", "delta_gain")
        }
        assert len(fps) == 5

    @pytest.mark.parametrize("bad", ["bogus", "KL", "delta-gain", 2])
    def test_rejects_bad_values(self, bad):
        with pytest.raises((ValueError, TypeError)):
            MapConfig(refine=bad)

    def test_from_dict_rejects_bad_refine(self):
        with pytest.raises(ValueError):
            MapConfig.from_dict({"refine": "anneal"})
