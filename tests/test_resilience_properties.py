"""Property tests: repair invariants over random graphs, machines, faults.

For any mapping and any survivable fault set, ``repair_mapping`` must
return a mapping that validates, assigns no task to a failed processor,
and routes nothing across a dead link -- regardless of graph shape,
topology, or which hardware died.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import DisconnectedTopologyError, networks
from repro.graph import TaskGraph
from repro.mapper import map_computation
from repro.resilience import FaultSet, repair_mapping

_TOPOLOGIES = [
    lambda: networks.ring(6),
    lambda: networks.mesh(3, 3),
    lambda: networks.hypercube(3),
    lambda: networks.torus(3, 3),
    lambda: networks.complete(5),
]


def repair_cases():
    @st.composite
    def build(draw):
        topo = draw(st.sampled_from(_TOPOLOGIES))()
        n = draw(st.integers(min_value=2, max_value=12))
        tg = TaskGraph("rand")
        tg.add_nodes(range(n))
        ph = tg.add_comm_phase("c")
        for _ in range(draw(st.integers(0, 2 * n))):
            u = draw(st.integers(0, n - 1))
            v = draw(st.integers(0, n - 1))
            if u != v:
                ph.add(u, v, float(draw(st.integers(1, 9))))

        procs = topo.processors
        n_fail = draw(st.integers(0, min(3, topo.n_processors - 1)))
        failed_procs = draw(
            st.lists(
                st.sampled_from(procs), min_size=n_fail, max_size=n_fail,
                unique=True,
            )
        )
        survivors = [p for p in procs if p not in failed_procs]
        live_links = [
            tuple(l) for l in topo.links
            if not (set(l) & set(failed_procs))
        ]
        failed_links = draw(
            st.lists(st.sampled_from(live_links), max_size=2, unique=True)
        ) if live_links else []
        degradable = [l for l in live_links if l not in failed_links]
        degraded = [
            (l, float(draw(st.integers(2, 5))))
            for l in draw(
                st.lists(st.sampled_from(degradable), max_size=2, unique=True)
            )
        ] if degradable else []
        faults = FaultSet(
            failed_procs=failed_procs,
            failed_links=failed_links,
            degraded_links=degraded,
        )
        return tg, topo, faults, survivors

    return build()


@settings(max_examples=40, deadline=None)
@given(repair_cases())
def test_repair_invariants(case):
    tg, topo, faults, survivors = case
    mapping = map_computation(tg, topo)
    try:
        report = repair_mapping(tg, mapping, topo, faults)
    except DisconnectedTopologyError:
        # The drawn faults split the machine; refusing is the contract.
        return

    repaired = report.mapping
    # 1. The repaired mapping is structurally valid with complete routes.
    repaired.validate(require_routes=True)
    # 2. No task sits on failed hardware.
    assert not (set(repaired.assignment.values()) & set(faults.failed_procs))
    assert set(repaired.assignment.values()) <= set(survivors)
    # 3. No route crosses a failed link (nor any link of a failed proc).
    dead = {
        tuple(sorted(l, key=repr)) for l in faults.dead_links_on(topo)
    }
    for route in repaired.routes.values():
        for a, b in zip(route, route[1:]):
            assert tuple(sorted((a, b), key=repr)) not in dead
    # 4. The degraded machine carries the degradation factors.
    for (u, v), factor in faults.degraded_links:
        assert report.degraded.link_slowdowns[
            report.degraded.link_id(u, v)
        ] == factor


@settings(max_examples=20, deadline=None)
@given(repair_cases())
def test_repair_is_deterministic(case):
    tg, topo, faults, _survivors = case
    mapping = map_computation(tg, topo)
    try:
        a = repair_mapping(tg, mapping, topo, faults)
        b = repair_mapping(tg, mapping, topo, faults)
    except DisconnectedTopologyError:
        return
    assert a.mapping.assignment == b.mapping.assignment
    assert a.mapping.routes == b.mapping.routes
    assert a.strategy == b.strategy
