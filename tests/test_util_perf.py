"""Tests for the repro.util.perf timer/counter registry."""

import pytest

from repro.util.perf import PerfRegistry
from repro.util import perf


class TestPerfRegistry:
    def test_span_records_calls_and_time(self):
        reg = PerfRegistry()
        for _ in range(3):
            with reg.span("work"):
                pass
        stats = reg.stats()["work"]
        assert stats.calls == 3
        assert stats.total >= 0.0
        assert stats.min <= stats.max
        assert stats.mean == pytest.approx(stats.total / 3)

    def test_span_records_on_exception(self):
        reg = PerfRegistry()
        with pytest.raises(RuntimeError):
            with reg.span("boom"):
                raise RuntimeError("x")
        assert reg.stats()["boom"].calls == 1

    def test_counters_accumulate(self):
        reg = PerfRegistry()
        reg.count("hits")
        reg.count("hits", 4)
        assert reg.counter("hits") == 5
        assert reg.counter("absent") == 0

    def test_disable_makes_noops(self):
        reg = PerfRegistry()
        reg.disable()
        with reg.span("skipped"):
            pass
        reg.count("skipped")
        assert reg.stats() == {} and reg.counters() == {}
        reg.enable()
        reg.count("back")
        assert reg.counter("back") == 1

    def test_reset_clears_everything(self):
        reg = PerfRegistry()
        with reg.span("s"):
            pass
        reg.count("c")
        reg.reset()
        assert reg.stats() == {} and reg.counters() == {}
        assert reg.total("s") == 0.0

    def test_report_formats_spans_and_counters(self):
        reg = PerfRegistry()
        with reg.span("alpha"):
            pass
        reg.count("beta", 2)
        text = reg.report()
        assert "alpha" in text and "beta" in text

    def test_report_empty(self):
        assert "no perf data" in PerfRegistry().report()


class TestPipelineInstrumentation:
    def test_map_and_simulate_record_spans(self):
        from repro.arch import networks
        from repro.graph import families
        from repro.mapper import map_computation
        from repro.sim import simulate

        perf.reset()
        mapping = map_computation(families.ring(8), networks.hypercube(3))
        simulate(mapping)
        stats = perf.stats()
        assert "mapper.map_computation" in stats
        assert "mapper.route" in stats
        assert "sim.simulate" in stats
        # The ring phase expression repeats one (ring; compute) step 8x:
        # 2 distinct steps, 14 cache hits.
        assert perf.counters()["sim.step_cache_miss"] == 2
        assert perf.counters()["sim.step_cache_hit"] == 14
        perf.reset()
