"""Tests for Algorithm MM-Route and the routing baselines."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import networks
from repro.graph import families
from repro.mapper.canned.registry import canned_assignment
from repro.mapper.routing import dimension_order_route, mm_route, random_route


def check_routes(tg, topo, assignment, result, *, shortest=True):
    """Every edge routed, every route a valid shortest network path."""
    for phase_name, phase in tg.comm_phases.items():
        for idx, e in enumerate(phase.edges):
            route = result.routes[(phase_name, idx)]
            assert route[0] == assignment[e.src]
            assert route[-1] == assignment[e.dst]
            assert topo.is_valid_route(route)
            if shortest:
                assert len(route) - 1 == topo.distance(
                    assignment[e.src], assignment[e.dst]
                )


def link_loads(topo, result, phase):
    loads = {}
    for (ph, _), route in result.routes.items():
        if ph != phase:
            continue
        for a, b in zip(route, route[1:]):
            lid = topo.link_id(a, b)
            loads[lid] = loads.get(lid, 0) + 1
    return loads


class TestMmRouteFig6:
    def setup_method(self):
        self.tg = families.nbody(15)
        self.topo = networks.hypercube(3)
        self.assignment = canned_assignment(self.tg, self.topo)

    def test_all_routes_shortest(self):
        result = mm_route(self.tg, self.topo, self.assignment)
        check_routes(self.tg, self.topo, self.assignment, result)

    def test_ring_phase_needs_single_round(self):
        # Gray-code embedding makes all ring hops single-link; MM-Route
        # spreads 8 inter-processor messages over 8 distinct links in one
        # matching round.
        result = mm_route(self.tg, self.topo, self.assignment)
        assert result.rounds["ring"] == [1]

    def test_chordal_contention_bounded(self):
        result = mm_route(self.tg, self.topo, self.assignment)
        # 15 chordal messages over 12 links can't be contention-free, but
        # each matching round uses a link once; the bound is the round count.
        for phase in ("ring", "chordal"):
            loads = link_loads(self.topo, result, phase)
            for step_rounds in [result.max_rounds(phase)]:
                assert max(loads.values()) <= sum(result.rounds[phase])

    def test_beats_or_matches_deterministic_routing(self):
        mm = mm_route(self.tg, self.topo, self.assignment)
        det = dimension_order_route(self.tg, self.topo, self.assignment)
        mm_worst = max(link_loads(self.topo, mm, "chordal").values())
        det_worst = max(link_loads(self.topo, det, "chordal").values())
        assert mm_worst <= det_worst


class TestMmRouteGeneral:
    def test_intra_processor_routes(self):
        tg = families.ring(4)
        topo = networks.ring(2)
        assignment = {0: 0, 1: 0, 2: 1, 3: 1}
        result = mm_route(tg, topo, assignment)
        assert result.routes[("ring", 0)] == [0]  # 0 -> 1 same processor
        assert result.routes[("ring", 1)] == [0, 1]

    def test_single_processor(self):
        tg = families.complete(4)
        topo = networks.ring(1)
        result = mm_route(tg, topo, {i: 0 for i in range(4)})
        assert all(route == [0] for route in result.routes.values())

    def test_multi_hop_routes(self):
        tg = families.ring(4)
        topo = networks.linear(4)
        assignment = {i: i for i in range(4)}
        result = mm_route(tg, topo, assignment)
        # The wrap edge 3 -> 0 must traverse the whole chain.
        assert result.routes[("ring", 3)] == [3, 2, 1, 0]

    def test_rounds_recorded_per_hop(self):
        tg = families.complete(4)
        topo = networks.star(4)
        result = mm_route(tg, topo, {i: i for i in range(4)})
        assert "all" in result.rounds
        assert all(r >= 1 for r in result.rounds["all"])

    def test_max_rounds_default(self):
        tg = families.ring(2)
        topo = networks.ring(2)
        result = mm_route(tg, topo, {0: 0, 1: 0})
        assert result.max_rounds("ring") == 1

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=4), st.integers(min_value=0, max_value=10**6))
    def test_random_assignment_routes_valid(self, dim, seed):
        import random

        rng = random.Random(seed)
        tg = families.fft_butterfly(8)
        topo = networks.hypercube(dim)
        assignment = {t: rng.randrange(1 << dim) for t in tg.nodes}
        result = mm_route(tg, topo, assignment)
        check_routes(tg, topo, assignment, result)


class TestBaselines:
    def test_random_route_valid_and_shortest(self):
        tg = families.nbody(15)
        topo = networks.hypercube(3)
        assignment = canned_assignment(tg, topo)
        result = random_route(tg, topo, assignment, seed=11)
        check_routes(tg, topo, assignment, result)

    def test_random_route_seeded(self):
        tg = families.nbody(7)
        topo = networks.hypercube(3)
        assignment = canned_assignment(tg, topo)
        a = random_route(tg, topo, assignment, seed=5)
        b = random_route(tg, topo, assignment, seed=5)
        assert a.routes == b.routes

    def test_dimension_order_valid_and_deterministic(self):
        tg = families.fft_butterfly(8)
        topo = networks.hypercube(3)
        assignment = {i: i for i in range(8)}
        a = dimension_order_route(tg, topo, assignment)
        b = dimension_order_route(tg, topo, assignment)
        check_routes(tg, topo, assignment, a)
        assert a.routes == b.routes

    def test_dimension_order_single_path_per_pair(self):
        topo = networks.hypercube(3)
        tg = families.ring(8)
        assignment = {i: i for i in range(8)}
        result = dimension_order_route(tg, topo, assignment)
        # Same (src, dst) pair always gets the same route.
        seen = {}
        for (phase, idx), route in result.routes.items():
            key = (route[0], route[-1])
            if key in seen:
                assert seen[key] == route
            seen[key] = route
