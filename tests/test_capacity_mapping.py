"""Capacity-aware mapping end to end: every layer honours the vectors.

The property at the heart of PR 9: whatever strategy produces a mapping
on a capacity-constrained machine, the per-processor consumed demand
stays within every declared resource vector -- contraction, embedding,
refinement, and repair all preserve feasibility.  The escape hatch
(``capacity_mode="ignore"``) reproduces the scalar-bound behaviour and
is exactly the path ``Mapping.validate()`` catches overflowing.
"""

import math

from hypothesis import assume, given, settings, strategies as st

import pytest

from repro.arch import networks
from repro.arch.capacity import Capacities
from repro.arch.hierarchy import node_core_tree, with_capacities
from repro.graph.taskgraph import TaskGraph
from repro.mapper.mapping import NotApplicableError
from repro.pipeline import MapConfig, RunConfig, run_pipeline
from repro.util.validation import ValidationError

STAGES = ("contract", "embed", "refine", "route")


def _weighted_ring(weights):
    tg = TaskGraph("capring")
    for i, w in enumerate(weights):
        tg.add_node(i, w)
    phase = tg.add_comm_phase("ring")
    n = len(weights)
    for i in range(n):
        phase.add(i, (i + 1) % n, 1.0)
    tg.add_exec_phase("work", 1.0)
    return tg


def _memory_machine(base, cap):
    return with_capacities(
        base,
        Capacities.from_spec(
            {"memory": {"demand": "weight", "cap": float(cap)}},
            base.processors,
        ),
    )


def _proc_weight_loads(tg, mapping):
    loads = {}
    for task, proc in mapping.assignment.items():
        loads[proc] = loads.get(proc, 0.0) + tg.node_weight(task)
    return loads


# ----------------------------------------------------------------------
# the property: produced mappings satisfy every resource vector
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_capacity_constrained_mappings_respect_every_resource(data):
    n = data.draw(st.integers(min_value=6, max_value=20), label="n")
    weights = data.draw(
        st.lists(st.integers(min_value=1, max_value=4),
                 min_size=n, max_size=n),
        label="weights",
    )
    n_procs = data.draw(st.sampled_from([2, 4]), label="n_procs")
    strategy = data.draw(
        st.sampled_from(["mwm", "multilevel", "auto"]), label="strategy"
    )
    tg = _weighted_ring(weights)
    # generous-but-declared caps: 2x the balanced share, so the greedy
    # heuristics always have room yet the feasibility gates stay active
    cap = max(2 * math.ceil(sum(weights) / n_procs), max(weights) + 1)
    topo = _memory_machine(networks.complete(n_procs), cap)
    try:
        result = run_pipeline(
            tg, topo,
            RunConfig(map=MapConfig(strategy=strategy),
                      stages=STAGES, cache=False),
        )
    except NotApplicableError:
        assume(False)  # a forced strategy may decline an instance
        return
    result.mapping.validate()
    loads = _proc_weight_loads(tg, result.mapping)
    assert all(load <= cap + 1e-9 for load in loads.values()), loads


# ----------------------------------------------------------------------
# deterministic end-to-end scenarios
# ----------------------------------------------------------------------
def _heavy_ring():
    """16 tasks, four of weight 5 spread around the ring (total 32)."""
    return _weighted_ring([5 if i % 4 == 0 else 1 for i in range(16)])


class TestStrictMode:
    def test_mwm_respects_caps_the_scalar_bound_would_break(self):
        tg = _heavy_ring()
        topo = _memory_machine(networks.complete(4), 9.0)
        result = run_pipeline(
            tg, topo,
            RunConfig(map=MapConfig(strategy="mwm"), stages=STAGES,
                      cache=False),
        )
        result.mapping.validate()
        assert max(_proc_weight_loads(tg, result.mapping).values()) <= 9.0

    @pytest.mark.parametrize("refine", ["kl", "delta_gain"])
    def test_refinement_preserves_feasibility(self, refine):
        tg = _heavy_ring()
        topo = _memory_machine(networks.complete(4), 9.0)
        result = run_pipeline(
            tg, topo,
            RunConfig(map=MapConfig(strategy="mwm", refine=refine),
                      stages=STAGES, cache=False),
        )
        result.mapping.validate()
        assert max(_proc_weight_loads(tg, result.mapping).values()) <= 9.0

    def test_multilevel_on_hierarchical_machine(self):
        tg = _weighted_ring([3 if i % 8 == 0 else 1 for i in range(64)])
        topo = node_core_tree(
            4, 4, capacities={"memory": {"demand": "weight", "cap": 8.0}}
        )
        result = run_pipeline(
            tg, topo,
            RunConfig(map=MapConfig(strategy="multilevel"), stages=STAGES,
                      cache=False),
        )
        result.mapping.validate()
        assert max(_proc_weight_loads(tg, result.mapping).values()) <= 8.0

    def test_infeasible_task_is_not_applicable(self):
        # one task outweighs every processor: no strategy can place it
        tg = _weighted_ring([50, 1, 1, 1])
        topo = _memory_machine(networks.complete(2), 10.0)
        with pytest.raises(NotApplicableError):
            run_pipeline(
                tg, topo,
                RunConfig(map=MapConfig(strategy="mwm"), stages=STAGES,
                          cache=False),
            )


class TestIgnoreMode:
    def test_scalar_bound_path_overflows_and_validate_flags_it(self):
        tg = _heavy_ring()
        # cap 6: the count-balanced packing (4 tasks incl. one heavy per
        # processor) weighs 8 -- infeasible, which is the point
        topo = _memory_machine(networks.complete(4), 6.0)
        result = run_pipeline(
            tg, topo,
            RunConfig(
                map=MapConfig(strategy="mwm", capacity_mode="ignore"),
                stages=STAGES, cache=False,
            ),
        )
        with pytest.raises(ValidationError) as info:
            result.mapping.validate()
        payload = info.value.payload
        assert payload["kind"] == "capacity_overflow"
        entry = payload["overflows"][0]
        assert entry["resource"] == "memory"
        assert entry["demand"] > entry["capacity"] == 6.0
        assert entry["processor"] in topo.processors

    def test_validate_can_skip_the_capacity_check(self):
        tg = _heavy_ring()
        topo = _memory_machine(networks.complete(4), 6.0)
        result = run_pipeline(
            tg, topo,
            RunConfig(
                map=MapConfig(strategy="mwm", capacity_mode="ignore"),
                stages=STAGES, cache=False,
            ),
        )
        result.mapping.validate(check_capacities=False)  # no raise

    def test_bad_capacity_mode_rejected(self):
        with pytest.raises(ValueError, match="capacity_mode"):
            MapConfig(capacity_mode="maybe")

    def test_strict_mode_is_omitted_from_config_dict(self):
        # fingerprint stability: pre-existing cache keys must not shift
        assert "capacity_mode" not in MapConfig().to_dict()
        assert MapConfig(capacity_mode="ignore").to_dict()[
            "capacity_mode"
        ] == "ignore"


class TestRepairHeadroom:
    def test_incremental_repair_relocates_onto_headroom(self):
        from repro.resilience import FaultSet, repair_mapping

        tg = _heavy_ring()
        base = networks.complete(6)
        topo = _memory_machine(base, 9.0)
        mapping = run_pipeline(
            tg, topo,
            RunConfig(map=MapConfig(strategy="mwm"), stages=STAGES,
                      cache=False),
        ).mapping
        report = repair_mapping(
            tg, mapping, topo, FaultSet(failed_procs=[base.processors[0]])
        )
        report.mapping.validate()
        loads = _proc_weight_loads(tg, report.mapping)
        assert base.processors[0] not in loads
        assert max(loads.values()) <= 9.0
