"""Tests for the reconstructed paper examples (repro.graph.paper_examples)."""

from repro.graph.paper_examples import (
    FIG5_LOAD_BOUND,
    FIG5_OPTIMAL_IPC,
    FIG5_PROCESSORS,
    fig4_generators_cycle_notation,
    fig5_task_graph,
)
from repro.groups import Permutation


class TestFig4Generators:
    def test_parse_as_valid_permutations(self):
        perms = [Permutation.parse(s, 8) for s in fig4_generators_cycle_notation]
        assert [str(p) for p in perms] == list(fig4_generators_cycle_notation)

    def test_are_the_power_of_two_rotations(self):
        perms = [Permutation.parse(s, 8) for s in fig4_generators_cycle_notation]
        for k, p in enumerate(perms):
            shift = 1 << k
            assert all(p(i) == (i + shift) % 8 for i in range(8))


class TestFig5Graph:
    def test_stated_parameters(self):
        assert FIG5_PROCESSORS == 3
        assert FIG5_LOAD_BOUND == 4
        assert FIG5_OPTIMAL_IPC == 6.0

    def test_twelve_tasks(self):
        tg = fig5_task_graph()
        assert tg.n_tasks == 12
        tg.validate()

    def test_contains_the_weight_15_edge(self):
        tg = fig5_task_graph()
        weights = {
            (e.src, e.dst): e.volume for _, e in tg.all_edges()
        }
        assert weights[(1, 2)] == 15.0

    def test_cross_community_volume_is_optimal_ipc(self):
        tg = fig5_task_graph()
        community = lambda t: t // 4
        cross = sum(
            e.volume
            for _, e in tg.all_edges()
            if community(e.src) != community(e.dst)
        )
        assert cross == FIG5_OPTIMAL_IPC

    def test_heavy_edges_force_greedy_order(self):
        # The five heaviest edges are the intra-pair merges the paper's
        # greedy stage performs before examining the weight-15 edge.
        tg = fig5_task_graph()
        edges = sorted(
            ((e.volume, (e.src, e.dst)) for _, e in tg.all_edges()),
            reverse=True,
        )
        top5 = {pair for _, pair in edges[:5]}
        assert top5 == {(0, 1), (4, 5), (2, 3), (6, 7), (8, 9)}
