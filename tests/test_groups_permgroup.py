"""Tests for repro.groups.permgroup and repro.groups.cayley."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.groups import (
    ClosureLimitExceeded,
    Permutation,
    PermutationGroup,
    cayley_edges,
    cayley_isomorphic_to_edges,
    regular_action_group,
)


def paper_generators():
    """The three communication functions of the 8-node perfect broadcast (Fig 4)."""
    comm1 = Permutation.parse("(01234567)", 8)
    comm2 = Permutation.parse("(0246)(1357)", 8)
    comm3 = Permutation.parse("(04)(15)(26)(37)", 8)
    return comm1, comm2, comm3


class TestClosure:
    def test_cyclic_group(self):
        g = PermutationGroup.cyclic(6)
        assert g.order == 6
        assert g.is_transitive()

    def test_paper_group_order_eight(self):
        group = PermutationGroup.generate(list(paper_generators()))
        assert group.order == 8

    def test_paper_group_elements_match_fig4(self):
        group = PermutationGroup.generate(list(paper_generators()))
        expected = {
            "(0)(1)(2)(3)(4)(5)(6)(7)",
            "(01234567)",
            "(0246)(1357)",
            "(03614725)",
            "(04)(15)(26)(37)",
            "(05274163)",
            "(0642)(1753)",
            "(07654321)",
        }
        assert {str(g) for g in group.elements} == expected

    def test_limit_halts_closure(self):
        # S_4 has 24 elements; generating with limit 8 must abort.
        gens = [
            Permutation.parse("(0123)", 4),
            Permutation.parse("(01)", 4),
        ]
        with pytest.raises(ClosureLimitExceeded):
            PermutationGroup.generate(gens, limit=8)

    def test_no_generators_rejected(self):
        with pytest.raises(ValueError):
            PermutationGroup.generate([])

    def test_mixed_degrees_rejected(self):
        with pytest.raises(ValueError):
            PermutationGroup.generate(
                [Permutation.identity(3), Permutation.identity(4)]
            )

    @given(st.integers(min_value=1, max_value=30))
    def test_cyclic_order(self, n):
        assert PermutationGroup.cyclic(n).order == n


class TestGroupAxioms:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=2, max_value=5).flatmap(
            lambda n: st.lists(
                st.permutations(list(range(n))).map(Permutation),
                min_size=1,
                max_size=2,
            )
        )
    )
    def test_closure_is_a_group(self, gens):
        g = PermutationGroup.generate(gens)
        elems = set(g.elements)
        assert g.identity() in elems
        for a in elems:
            assert a.inverse() in elems
            for b in elems:
                assert a * b in elems

    def test_lagrange(self):
        group = PermutationGroup.generate(list(paper_generators()))
        for h in group.cyclic_subgroups():
            assert group.order % len(h) == 0


class TestRegularAction:
    def test_paper_example_is_regular(self):
        group = PermutationGroup.generate(list(paper_generators()))
        assert group.is_regular_action()
        assert group.all_uniform_cycles()

    def test_s3_on_three_points_not_regular(self):
        gens = [Permutation.parse("(012)", 3), Permutation.parse("(01)", 3)]
        g = PermutationGroup.generate(gens)
        assert g.order == 6
        assert not g.is_regular_action()

    def test_regular_action_group_accepts_paper_example(self):
        group = regular_action_group(list(paper_generators()), 8)
        assert group is not None and group.order == 8

    def test_regular_action_group_rejects_oversize(self):
        gens = [Permutation.parse("(0123)", 4), Permutation.parse("(01)", 4)]
        assert regular_action_group(gens, 4) is None

    def test_regular_action_group_rejects_intransitive(self):
        gens = [Permutation.parse("(01)(23)", 4), Permutation.parse("(02)(13)", 4)]
        g = PermutationGroup.generate(gens)
        assert g.order == 4  # Klein four-group: regular here, sanity check
        assert regular_action_group(gens, 4) is not None
        # Now something genuinely intransitive with |G| == |X|:
        gens2 = [Permutation.parse("(0123)", 8)]
        # <(0123)> fixes 4..7, order 4 != 8 -> rejected by order check
        assert regular_action_group(gens2, 8) is None

    def test_degree_mismatch_rejected(self):
        with pytest.raises(ValueError):
            regular_action_group([Permutation.identity(4)], 8)


class TestStructureQueries:
    def test_cyclic_is_abelian(self):
        assert PermutationGroup.cyclic(8).is_abelian()

    def test_paper_group_abelian(self):
        group = PermutationGroup.generate(list(paper_generators()))
        assert group.is_abelian()  # Z_8

    def test_s3_not_abelian(self):
        gens = [Permutation.parse("(012)", 3), Permutation.parse("(01)", 3)]
        assert not PermutationGroup.generate(gens).is_abelian()

    def test_center_of_abelian_is_whole_group(self):
        g = PermutationGroup.cyclic(6)
        assert g.center() == frozenset(g.elements)

    def test_center_of_s3_trivial(self):
        gens = [Permutation.parse("(012)", 3), Permutation.parse("(01)", 3)]
        s3 = PermutationGroup.generate(gens)
        assert s3.center() == frozenset({s3.identity()})

    def test_orbits_partition(self):
        gens = [Permutation.parse("(01)(23)", 6)]
        g = PermutationGroup.generate(gens)
        orbits = g.orbits()
        assert sorted(map(sorted, orbits)) == [[0, 1], [2, 3], [4], [5]]

    def test_transitive_single_orbit(self):
        assert len(PermutationGroup.cyclic(5).orbits()) == 1

    def test_generator_normality_matches_full_check(self):
        # Non-abelian case: generator conjugation must agree with the
        # definition (checked against an explicit full-element test).
        gens = [Permutation.parse("(0123)", 4), Permutation.parse("(01)", 4)]
        s4 = PermutationGroup.generate(gens)
        # The Klein four-group {e,(01)(23),(02)(13),(03)(12)} is normal in S4.
        v4 = frozenset(
            {
                s4.identity(),
                Permutation.parse("(01)(23)", 4),
                Permutation.parse("(02)(13)", 4),
                Permutation.parse("(03)(12)", 4),
            }
        )
        assert s4.is_normal(v4)
        # <(01)> is not.
        assert not s4.is_normal(s4.cyclic_subgroup(Permutation.parse("(01)", 4)))


class TestSubgroupsAndCosets:
    def test_fig4_subgroup_e0_e4(self):
        group = PermutationGroup.generate(list(paper_generators()))
        comm3 = paper_generators()[2]
        h = group.cyclic_subgroup(comm3)
        assert len(h) == 2
        assert group.is_subgroup(h)
        assert group.is_normal(h)
        cosets = group.right_cosets(h)
        assert len(cosets) == 4
        # Each coset has exactly |H| elements and they partition G.
        assert all(len(c) == 2 for c in cosets)
        assert sorted(g for c in cosets for g in c) == group.elements

    def test_fig4_clusters_by_task(self):
        # The coset {E0, E4} corresponds to tasks {0, 4}; the paper's Fig 4c
        # clusters are {0,4}, {1,5}, {2,6}, {3,7}.
        group = PermutationGroup.generate(list(paper_generators()))
        comm3 = paper_generators()[2]
        cosets = group.right_cosets(group.cyclic_subgroup(comm3))
        clusters = sorted(sorted(g(0) for g in c) for c in cosets)
        assert clusters == [[0, 4], [1, 5], [2, 6], [3, 7]]

    def test_subgroups_of_order_two(self):
        group = PermutationGroup.generate(list(paper_generators()))
        subs = group.subgroups_of_order(2)
        assert all(len(h) == 2 for h in subs)
        # Z_8 has a unique subgroup of order 2: {E0, E4}.
        assert len(subs) == 1

    def test_subgroups_of_order_non_divisor(self):
        group = PermutationGroup.generate(list(paper_generators()))
        assert group.subgroups_of_order(3) == []

    def test_is_subgroup_rejects_non_closed(self):
        group = PermutationGroup.generate(list(paper_generators()))
        comm1 = paper_generators()[0]
        assert not group.is_subgroup({group.identity(), comm1})

    def test_right_cosets_requires_subgroup(self):
        group = PermutationGroup.generate(list(paper_generators()))
        with pytest.raises(ValueError):
            group.right_cosets({paper_generators()[0]})

    def test_normality_in_nonabelian_group(self):
        # In S_3, <(01)> is not normal but <(012)> is.
        gens = [Permutation.parse("(012)", 3), Permutation.parse("(01)", 3)]
        s3 = PermutationGroup.generate(gens)
        rot = s3.cyclic_subgroup(Permutation.parse("(012)", 3))
        swap = s3.cyclic_subgroup(Permutation.parse("(01)", 3))
        assert s3.is_normal(rot)
        assert not s3.is_normal(swap)

    def test_quotient_generator_action_internalises_comm3(self):
        # With H = <comm3>, the comm3 generator maps every coset to itself:
        # its 2 messages per cluster are internalised (Fig 4c).
        group = PermutationGroup.generate(list(paper_generators()))
        comm3 = paper_generators()[2]
        h = group.cyclic_subgroup(comm3)
        actions = group.quotient_generator_action(h)
        comm3_action = actions[2]
        assert all(i == j for i, j in comm3_action)
        # comm1 and comm2 cross between clusters.
        assert any(i != j for i, j in actions[0])
        assert any(i != j for i, j in actions[1])


class TestCayley:
    def test_cayley_edges_count(self):
        group = PermutationGroup.generate(list(paper_generators()))
        per_gen = cayley_edges(group)
        assert len(per_gen) == 3
        assert all(len(edges) == 8 for edges in per_gen)

    def test_cayley_isomorphism_to_task_graph(self):
        gens = list(paper_generators())
        group = PermutationGroup.generate(gens)
        # Task edges of each phase: x -> comm_k(x).
        phase_edges = [[(x, c(x)) for x in range(8)] for c in gens]
        assert cayley_isomorphic_to_edges(group, phase_edges)

    def test_cayley_isomorphism_detects_mismatch(self):
        gens = list(paper_generators())
        group = PermutationGroup.generate(gens)
        bad = [[(x, (x + 3) % 8) for x in range(8)] for _ in gens]
        assert not cayley_isomorphic_to_edges(group, bad)

    def test_edge_count_mismatch_rejected(self):
        group = PermutationGroup.generate(list(paper_generators()))
        with pytest.raises(ValueError):
            cayley_isomorphic_to_edges(group, [[(0, 1)]])
