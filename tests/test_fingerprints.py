"""Stable content fingerprints (repro.util.fingerprint + the three inputs).

The artifact cache is only sound if fingerprints are (a) identical across
processes regardless of ``PYTHONHASHSEED`` -- otherwise the disk tier
never hits after a restart -- and (b) sensitive to every semantic change
-- otherwise it serves wrong answers.  Both properties are tested here,
(a) by spawning subprocesses under forced different hash seeds.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.arch import networks
from repro.graph import families
from repro.graph.taskgraph import TaskGraph
from repro.pipeline import AnalyzeConfig, MapConfig, RunConfig, SimConfig
from repro.resilience import FaultSet
from repro.util.fingerprint import canonical_json, sort_encoded, stable_digest

SRC = str(Path(__file__).resolve().parent.parent / "src")

# Emits one JSON line of fingerprints for a representative input set:
# tuple-labelled graphs and topologies (torus/mesh), plain-int ones
# (ring/hypercube), a fault set mixing procs/links/degradations, and a
# non-default RunConfig.
_FINGERPRINT_SCRIPT = """
import json
from repro.arch import networks
from repro.graph import families
from repro.pipeline import MapConfig, RunConfig, run_pipeline, pipeline_key
from repro.resilience import FaultSet

tg = families.torus(4, 4)
topo = networks.mesh(2, 4)
faults = FaultSet(
    failed_procs=[(0, 1)],
    failed_links=[((0, 0), (1, 0))],
    degraded_links={((0, 2), (1, 2)): 2.5},
)
config = RunConfig(map=MapConfig(strategy="mwm", load_bound=3, refine=True))
key, _ = pipeline_key(families.ring(16), networks.hypercube(3), RunConfig())
print(json.dumps({
    "graph_tuple": tg.fingerprint(),
    "graph_int": families.ring(16).fingerprint(),
    "topo_tuple": topo.fingerprint(),
    "topo_int": networks.hypercube(3).fingerprint(),
    "faults": faults.fingerprint(),
    "config": config.fingerprint(),
    "pipeline_key": key,
}))
"""


def _fingerprints_under_seed(seed: str) -> dict:
    proc = subprocess.run(
        [sys.executable, "-c", _FINGERPRINT_SCRIPT],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": SRC, "PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin"},
        check=True,
    )
    return json.loads(proc.stdout)


def test_fingerprints_identical_across_hash_seeds():
    a = _fingerprints_under_seed("1")
    b = _fingerprints_under_seed("4242")
    assert a == b
    # And the current process (whatever its seed) agrees too.
    assert a["graph_int"] == families.ring(16).fingerprint()
    assert a["topo_int"] == networks.hypercube(3).fingerprint()


def test_fingerprint_equal_content_equal_digest():
    assert families.ring(16).fingerprint() == families.ring(16).fingerprint()
    assert networks.mesh(2, 4).fingerprint() == networks.mesh(2, 4).fingerprint()
    f1 = FaultSet(failed_links=[(0, 1)], degraded_links={(2, 3): 2.0})
    f2 = FaultSet(failed_links=[(1, 0)], degraded_links=[((3, 2), 2.0)])
    assert f1.fingerprint() == f2.fingerprint()


def test_taskgraph_fingerprint_sensitivity():
    base = families.ring(16).fingerprint()

    light = TaskGraph("g")
    heavy = TaskGraph("g")
    light.add_node("x", 1.0)
    heavy.add_node("x", 7.0)
    assert light.fingerprint() != heavy.fingerprint()

    renamed = families.ring(16)
    renamed.name = "other"
    assert renamed.fingerprint() != base

    extra_edge = families.ring(16)
    extra_edge.comm_phase("ring").add(0, 8, 1.0)
    assert extra_edge.fingerprint() != base

    assert families.ring(15).fingerprint() != base


def test_taskgraph_fingerprint_tracks_mutation_after_caching():
    tg = families.ring(16)
    before = tg.fingerprint()
    tg.comm_phase("ring").add(0, 8, 1.0)
    assert tg.fingerprint() != before


def test_taskgraph_fingerprint_tracks_phase_expr():
    tg = families.ring(16)
    before = tg.fingerprint()
    tg.phase_expr = None
    assert tg.fingerprint() != before


def test_taskgraph_fingerprint_volume_and_cost_sensitivity():
    a = TaskGraph("g")
    b = TaskGraph("g")
    for g in (a, b):
        g.add_node("x")
        g.add_node("y")
    a.add_comm_phase("p").add("x", "y", 1.0)
    b.add_comm_phase("p").add("x", "y", 2.0)
    assert a.fingerprint() != b.fingerprint()

    c = TaskGraph("g")
    d = TaskGraph("g")
    for g in (c, d):
        g.add_node("x")
        g.add_node("y")
        g.add_comm_phase("p").add("x", "y", 1.0)
    c.add_exec_phase("e", 1.0)
    d.add_exec_phase("e", 1.0, {"x": 5.0})
    assert c.fingerprint() != d.fingerprint()


def test_topology_fingerprint_sensitivity():
    base = networks.hypercube(3).fingerprint()
    assert networks.hypercube(2).fingerprint() != base
    assert networks.mesh(2, 4).fingerprint() != base

    # A degraded machine fingerprints differently from the pristine one,
    # and differently per slowdown factor.
    topo = networks.hypercube(3)
    cut = topo.degrade(FaultSet(degraded_links={(0, 1): 2.0}))
    worse = topo.degrade(FaultSet(degraded_links={(0, 1): 4.0}))
    assert cut.fingerprint() != topo.fingerprint()
    assert cut.fingerprint() != worse.fingerprint()


def test_faultset_fingerprint_sensitivity():
    base = FaultSet(failed_procs=[1]).fingerprint()
    assert FaultSet(failed_procs=[2]).fingerprint() != base
    assert FaultSet(failed_procs=[1, 2]).fingerprint() != base
    assert FaultSet(failed_links=[(1, 2)]).fingerprint() != base
    assert FaultSet().fingerprint() != base
    assert (
        FaultSet(degraded_links={(1, 2): 2.0}).fingerprint()
        != FaultSet(degraded_links={(1, 2): 3.0}).fingerprint()
    )


def test_runconfig_fingerprint_sensitivity_and_cache_neutrality():
    base = RunConfig().fingerprint()
    assert RunConfig(map=MapConfig(strategy="mwm")).fingerprint() != base
    assert RunConfig(sim=SimConfig(hop_latency=2.0)).fingerprint() != base
    assert RunConfig(analyze=AnalyzeConfig(kernel="reference")).fingerprint() != base
    assert RunConfig(stages=("contract", "embed")).fingerprint() != base
    # The cache switch changes what is *stored*, not what is computed.
    assert RunConfig(cache=False).fingerprint() == base


def test_fingerprint_helpers():
    assert canonical_json({"b": 1, "a": (1,)}) == canonical_json({"a": [1], "b": 1})
    # Order is by canonical JSON text -- deterministic is what matters,
    # not numeric ("[10]" < "[1]" because "0" < "]").
    assert sort_encoded([[2], [10], [1]]) == [[10], [1], [2]]
    assert sort_encoded([[2], [10], [1]]) == sort_encoded([[1], [2], [10]])
    d1 = stable_digest({"a": 1})
    assert d1 == stable_digest({"a": 1})
    assert d1 != stable_digest({"a": 2})
    with pytest.raises(ValueError):
        stable_digest(float("nan"))
