"""Tests for JSON serialisation (repro.io)."""

import json

import pytest

from repro.arch import networks
from repro.graph import families
from repro.larcs import stdlib
from repro.mapper import map_computation
from repro.io import (
    load_mapping,
    mapping_from_dict,
    mapping_to_dict,
    save_mapping,
    taskgraph_from_dict,
    taskgraph_to_dict,
)


class TestTaskGraphRoundTrip:
    def test_nbody(self):
        tg = families.nbody(15)
        back = taskgraph_from_dict(taskgraph_to_dict(tg))
        assert back.nodes == tg.nodes
        assert back.family == tg.family
        for phase in tg.comm_phases:
            assert back.comm_phase(phase).pairs() == tg.comm_phase(phase).pairs()
        assert back.phase_expr.linearize() == tg.phase_expr.linearize()

    def test_tuple_labels(self):
        tg = stdlib.load("jacobi", rows=3, cols=3)
        back = taskgraph_from_dict(taskgraph_to_dict(tg))
        assert back.nodes == tg.nodes
        assert (0, 0) in back.nodes  # tuples restored, not lists

    def test_per_task_costs(self):
        tg = stdlib.load("pipeline", n=4)
        back = taskgraph_from_dict(taskgraph_to_dict(tg))
        work = back.exec_phase("work")
        assert work.cost_of(1) == 2.0

    def test_volumes_preserved(self):
        tg = families.ring(4, volume=7.5)
        back = taskgraph_from_dict(taskgraph_to_dict(tg))
        assert back.comm_phase("ring").edges[0].volume == 7.5

    def test_json_serialisable(self):
        tg = families.hypercube(3)
        json.dumps(taskgraph_to_dict(tg))  # no TypeError


class TestStdlibSweep:
    @pytest.mark.parametrize(
        "name,kw",
        [
            ("nbody", dict(n=7)),
            ("jacobi", dict(rows=3, cols=3)),
            ("sor", dict(rows=3, cols=3)),
            ("fft", dict(m=3)),
            ("dnc", dict(m=3)),
            ("cannon", dict(q=2)),
            ("voting", dict(m=3)),
            ("pipeline", dict(n=4)),
            ("annealing", dict(rows=3, cols=3)),
            ("oddeven", dict(n=6)),
            ("bitonic", dict(m=3)),
            ("gauss", dict(n=4)),
        ],
    )
    def test_every_stdlib_graph_round_trips(self, name, kw):
        tg = stdlib.load(name, **kw)
        back = taskgraph_from_dict(json.loads(json.dumps(taskgraph_to_dict(tg))))
        assert back.nodes == tg.nodes
        assert back.family == tg.family
        for phase in tg.comm_phases:
            orig = [(e.src, e.dst, e.volume) for e in tg.comm_phase(phase).edges]
            got = [(e.src, e.dst, e.volume) for e in back.comm_phase(phase).edges]
            assert got == orig
        if tg.phase_expr is not None:
            assert back.phase_expr.linearize() == tg.phase_expr.linearize()


class TestRandomRoundTrip:
    from hypothesis import given, settings, strategies as st

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=12),
        edges=st.lists(
            st.tuples(
                st.integers(0, 11), st.integers(0, 11), st.integers(1, 50)
            ),
            max_size=20,
        ),
    )
    def test_random_graph_round_trip(self, n, edges):
        from repro.graph.taskgraph import TaskGraph

        tg = TaskGraph("rand")
        tg.add_nodes(range(n))
        ph = tg.add_comm_phase("c")
        for u, v, w in edges:
            if u < n and v < n:
                ph.add(u, v, float(w))
        back = taskgraph_from_dict(json.loads(json.dumps(taskgraph_to_dict(tg))))
        assert back.nodes == tg.nodes
        assert [(e.src, e.dst, e.volume) for e in back.comm_phase("c").edges] == [
            (e.src, e.dst, e.volume) for e in tg.comm_phase("c").edges
        ]


class TestMappingRoundTrip:
    def test_full_mapping(self):
        m = map_computation(families.nbody(15), networks.hypercube(3))
        back = mapping_from_dict(mapping_to_dict(m))
        assert back.assignment == m.assignment
        assert back.routes == m.routes
        assert back.provenance == m.provenance
        back.validate(require_routes=True)

    def test_topology_rebuilt(self):
        m = map_computation(families.ring(8), networks.mesh(2, 4), strategy="mwm")
        back = mapping_from_dict(mapping_to_dict(m))
        assert back.topology.n_processors == 8
        assert back.topology.family == ("mesh", (2, 4))
        assert back.topology.diameter == m.topology.diameter

    def test_tuple_label_mapping(self):
        m = map_computation(
            stdlib.load("jacobi", rows=4, cols=4), networks.mesh(2, 2)
        )
        back = mapping_from_dict(mapping_to_dict(m))
        assert back.proc_of((0, 0)) == m.proc_of((0, 0))

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError, match="format"):
            mapping_from_dict({"format": "something-else"})

    def test_file_roundtrip(self, tmp_path):
        m = map_computation(families.nbody(15), networks.hypercube(3))
        path = tmp_path / "mapping.json"
        save_mapping(m, str(path))
        back = load_mapping(str(path))
        assert back.assignment == m.assignment
        # The saved artefact is analysis-ready.
        from repro.metrics import analyze

        assert analyze(back).total_ipc == analyze(m).total_ipc

    def test_simulatable_after_load(self, tmp_path):
        from repro.sim import CostModel, simulate

        m = map_computation(families.nbody(7), networks.hypercube(2))
        path = tmp_path / "m.json"
        save_mapping(m, str(path))
        back = load_mapping(str(path))
        assert simulate(back, CostModel()).total_time == simulate(
            m, CostModel()
        ).total_time
