"""Hierarchical machine generators and MachineSpec (repro.arch.hierarchy)."""

import json

import pytest

from repro.arch import networks
from repro.arch.capacity import Capacities
from repro.arch.hierarchy import (
    MACHINE_FORMAT,
    MachineSpec,
    describe_machine,
    dragonfly,
    fat_tree,
    load_machine,
    machine_from_dict,
    node_core_tree,
    parse_machine,
    with_capacities,
)


class TestFatTree:
    def test_two_level_shape(self):
        t = fat_tree([4, 8])
        assert t.n_processors == 32
        # 4 complete groups of 8 leaves plus the complete graph of gateways
        assert t.n_links == 4 * (8 * 7 // 2) + (4 * 3 // 2)
        assert t.family == ("fat_tree", (4, 8))
        assert t.hierarchy["kind"] == "fat_tree"
        assert [lvl["arity"] for lvl in t.hierarchy["levels"]] == [4, 8]

    def test_default_bandwidth_doubles_upward(self):
        t = fat_tree([2, 2])
        # leaf links at bandwidth 1.0 carry no slowdown entry; the top
        # level at 2.0 lowers to factor 0.5
        assert set(t.link_slowdowns.values()) == {0.5}
        top_links = sum(1 for f in t.link_slowdowns.values() if f == 0.5)
        assert top_links == 1  # complete graph over 2 gateways

    def test_explicit_bandwidths(self):
        t = fat_tree([2, 2], bandwidths=[4.0, 1.0])
        assert set(t.link_slowdowns.values()) == {0.25}

    def test_distances_route_through_gateways(self):
        t = fat_tree([2, 2])
        # leaves of one pod are adjacent; crossing pods goes leaf ->
        # gateway -> gateway(-> leaf)
        assert t.distance((0, 0), (0, 1)) == 1
        assert t.distance((0, 0), (1, 0)) == 1  # both are gateways
        assert t.distance((0, 1), (1, 1)) == 3

    def test_bad_arities_rejected(self):
        with pytest.raises(ValueError, match="arity"):
            fat_tree([])
        with pytest.raises(ValueError, match="arity"):
            fat_tree([4, 1])

    def test_bandwidth_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="bandwidths"):
            fat_tree([2, 2], bandwidths=[1.0])


class TestDragonfly:
    def test_shape_and_links(self):
        t = dragonfly(3, 4)
        assert t.n_processors == 12
        assert t.n_links == 3 * (4 * 3 // 2) + 3  # local cliques + globals
        assert t.hierarchy["kind"] == "dragonfly"

    def test_global_links_are_slower(self):
        t = dragonfly(3, 4, local_bandwidth=1.0, global_bandwidth=0.5)
        assert set(t.link_slowdowns.values()) == {2.0}
        assert sum(1 for f in t.link_slowdowns.values() if f == 2.0) == 3

    def test_too_small_rejected(self):
        with pytest.raises(ValueError, match="dragonfly"):
            dragonfly(1, 4)


class TestNodeCoreTree:
    def test_shape(self):
        t = node_core_tree(4, 4)
        assert t.n_processors == 16
        # four crossbars of 6 links plus the 4-gateway ring
        assert t.n_links == 4 * 6 + 4

    def test_two_node_case_has_single_inter_link(self):
        t = node_core_tree(2, 3)
        assert t.n_links == 2 * 3 + 1

    def test_inter_node_links_are_thin(self):
        t = node_core_tree(4, 2, inter_bandwidth=0.25)
        assert set(t.link_slowdowns.values()) == {4.0}

    def test_capacities_attach(self):
        t = node_core_tree(
            2, 2, capacities={"memory": {"demand": "weight", "cap": 8.0}}
        )
        assert t.capacities is not None
        assert t.capacities.cap_for((1, 1)) == (8.0,)


class TestWithCapacities:
    def test_structure_and_slowdowns_preserved(self):
        base = networks.mesh(2, 3)
        capped = with_capacities(base, {"slots": 4})
        assert capped.processors == base.processors
        assert capped.n_links == base.n_links
        assert capped.link_slowdowns == base.link_slowdowns
        assert capped.capacities.cap_for(base.processors[0]) == (4.0,)

    def test_fingerprint_differs_but_structure_key_shared(self):
        base = networks.mesh(2, 3)
        capped = with_capacities(base, {"slots": 4})
        assert capped.fingerprint() != base.fingerprint()
        assert capped.structural_key() == base.structural_key()

    def test_accepts_capacities_instance(self):
        base = networks.ring(4)
        caps = Capacities.uniform(["m"], base.processors, 2.0)
        assert with_capacities(base, caps).capacities is caps


class TestDistanceMatrixCache:
    def test_capacity_variant_shares_the_matrix(self):
        base = networks.mesh(3, 3)
        capped = with_capacities(base, {"slots": 4})
        assert base.distance_matrix() is capped.distance_matrix()

    def test_regenerated_hierarchy_shares_the_matrix(self):
        a = fat_tree([2, 4])
        b = fat_tree([2, 4], bandwidths=[8.0, 1.0])
        assert a.distance_matrix() is b.distance_matrix()

    def test_different_structures_do_not_share(self):
        a = networks.ring(5)
        b = networks.linear(5)
        assert a.distance_matrix() is not b.distance_matrix()

    def test_capacity_only_degrade_keeps_matrix(self):
        from repro.resilience import FaultSet

        t = with_capacities(networks.ring(6), {"slots": 4})
        mat = t.distance_matrix()
        degraded = t.degrade(
            FaultSet(degraded_links=[((0, 1), 2.0)])
        )
        assert degraded.distance_matrix() is mat


class TestMachineSpec:
    def test_parse_generator_spec(self):
        spec = MachineSpec.parse("fat_tree:4x8")
        assert spec.kind == "fat_tree"
        assert spec.params == {"arities": [4, 8]}
        assert spec.build().n_processors == 32

    def test_parse_dragonfly_and_node_core(self):
        assert MachineSpec.parse("dragonfly:3x4").build().n_processors == 12
        assert MachineSpec.parse("node_core_tree:2x8").build().n_processors == 16

    def test_flat_topology_spec_falls_through(self):
        spec = MachineSpec.parse("mesh:2x4")
        assert spec.kind == "topology"
        assert spec.build().n_processors == 8

    def test_bad_sizes_rejected(self):
        with pytest.raises(ValueError, match="sizes must be integers"):
            MachineSpec.parse("fat_tree:axb")
        with pytest.raises(ValueError, match="exactly\\s+two sizes"):
            MachineSpec.parse("dragonfly:3")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown machine kind"):
            MachineSpec(kind="hypertorus")

    def test_dict_round_trip(self):
        spec = MachineSpec(
            kind="node_core_tree",
            params={"nodes": 2, "cores": 4},
            capacities={"memory": {"demand": "weight", "cap": 8.0}},
        )
        doc = spec.to_dict()
        assert doc["format"] == MACHINE_FORMAT
        again = MachineSpec.from_dict(doc)
        assert again == spec
        assert again.build().capacities is not None

    def test_from_dict_rejects_bad_documents(self):
        with pytest.raises(ValueError, match="unsupported machine format"):
            MachineSpec.from_dict({"format": "v0", "kind": "fat_tree"})
        with pytest.raises(ValueError, match="unknown machine spec keys"):
            MachineSpec.from_dict({"kind": "fat_tree", "weird": 1})
        with pytest.raises(ValueError, match="needs a 'kind'"):
            MachineSpec.from_dict({})

    def test_topology_kind_gains_capacities(self):
        spec = MachineSpec(
            kind="topology",
            params={"spec": "ring:4"},
            capacities={"slots": 4},
        )
        topo = spec.build()
        assert topo.n_processors == 4
        assert topo.capacities.cap_for(topo.processors[0]) == (4.0,)


class TestParseAndLoadMachine:
    def test_parse_machine_spec_string(self):
        assert parse_machine("fat_tree:2x4").n_processors == 8
        assert parse_machine("hypercube:3").n_processors == 8

    def test_machine_file_wins_over_spec(self, tmp_path):
        doc = {
            "format": MACHINE_FORMAT,
            "kind": "node_core_tree",
            "params": {"nodes": 2, "cores": 2},
            "capacities": {"memory": {"demand": "weight", "cap": 8.0}},
        }
        path = tmp_path / "machine.json"
        path.write_text(json.dumps(doc))
        topo = parse_machine(str(path))
        assert topo.n_processors == 4
        assert topo.capacities is not None
        assert load_machine(str(path)).fingerprint() == topo.fingerprint()
        assert machine_from_dict(doc).fingerprint() == topo.fingerprint()

    def test_bad_machine_file_rejected(self, tmp_path):
        path = tmp_path / "machine.json"
        path.write_text("{nope")
        with pytest.raises(ValueError, match="invalid JSON"):
            load_machine(str(path))


class TestDescribeMachine:
    def test_hierarchical_machine(self):
        t = fat_tree([2, 4], capacities={"slots": 4})
        doc = describe_machine(t)
        assert doc["kind"] == "fat_tree"
        assert doc["n_processors"] == 8
        assert [lvl["arity"] for lvl in doc["levels"]] == [2, 4]
        classes = {c["slowdown"]: c["links"] for c in doc["link_bandwidth_classes"]}
        assert classes == {0.5: 1, 1.0: 12}
        assert doc["capacities"] == [
            {"resource": "slots", "demand": "unit",
             "total": 32.0, "min": 4.0, "max": 4.0}
        ]
        json.dumps(doc)  # must be JSON-compatible

    def test_flat_machine(self):
        doc = describe_machine(networks.ring(4))
        assert doc["kind"] == "flat"
        assert doc["levels"] == []
        assert doc["capacities"] is None
        assert doc["link_bandwidth_classes"] == [
            {"slowdown": 1.0, "bandwidth": 1.0, "links": 4}
        ]
