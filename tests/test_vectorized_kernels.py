"""Vectorized-kernel equivalence tests (PR 2).

Every fast kernel -- the integer-indexed NN-Embed, the table-driven
MM-Route, the bincount METRICS accumulation -- must produce bit-identical
results to its reference implementation across the graph families x
topology grid.  These tests pin that contract.
"""

import pytest

from repro.arch import networks
from repro.arch.topology import Topology
from repro.graph import families
from repro.mapper import map_computation
from repro.mapper.contraction import mwm_contract
from repro.mapper.embedding.nn_embed import assignment_from_clusters, nn_embed
from repro.mapper.routing.mm_route import mm_route
from repro.metrics.analysis import analyze
from repro.sim import CostModel, simulate

FAMILIES = [
    ("ring", lambda: families.ring(16)),
    ("torus", lambda: families.torus(4, 4)),
    ("hypercube", lambda: families.hypercube(4)),
    ("butterfly", lambda: families.fft_butterfly(16)),
    ("binomial_tree", lambda: families.binomial_tree(5)),
]

TOPOLOGIES = [
    ("mesh4x4", lambda: networks.mesh(4, 4)),
    ("hypercube4", lambda: networks.hypercube(4)),
]

GRID = [
    pytest.param(tg_fn, topo_fn, id=f"{fam}-{topo}")
    for fam, tg_fn in FAMILIES
    for topo, topo_fn in TOPOLOGIES
]


class TestTopologyVectorCore:
    def test_distance_matrix_matches_distance(self):
        topo = networks.torus(4, 4)
        D = topo.distance_matrix()
        assert D.shape == (16, 16)
        for u in topo.processors:
            for v in topo.processors:
                assert D[topo.index_of(u), topo.index_of(v)] == topo.distance(u, v)

    def test_distance_matrix_is_cached(self):
        topo = networks.hypercube(3)
        assert topo.distance_matrix() is topo.distance_matrix()

    def test_index_bijection(self):
        topo = networks.mesh(3, 5)
        for i, p in enumerate(topo.processors):
            assert topo.index_of(p) == i
            assert topo.proc_by_index(i) == p
        assert topo.proc_indices == {p: i for i, p in enumerate(topo.processors)}

    def test_degree_array(self):
        topo = networks.star(5)
        degrees = topo.degree_array()
        assert [int(degrees[topo.index_of(p)]) for p in topo.processors] == [
            topo.degree(p) for p in topo.processors
        ]

    def test_next_hop_links_matches_next_hops(self):
        topo = networks.hypercube(3)
        for src in topo.processors:
            for dst in topo.processors:
                table = topo.next_hop_links(topo.index_of(src), topo.index_of(dst))
                expected = [
                    (topo.index_of(nb), topo.link_id(src, nb))
                    for nb in topo.next_hops(src, dst)
                ]
                assert list(table) == expected

    def test_fallback_without_scipy(self, monkeypatch):
        import builtins

        real_import = builtins.__import__

        def no_scipy(name, *args, **kwargs):
            if name.startswith("scipy"):
                raise ImportError(name)
            return real_import(name, *args, **kwargs)

        monkeypatch.setattr(builtins, "__import__", no_scipy)
        topo = networks.torus(3, 3)
        D = topo.distance_matrix()
        for u in topo.processors:
            for v in topo.processors:
                assert D[topo.index_of(u), topo.index_of(v)] == topo.distance(u, v)


class TestNnEmbedEquivalence:
    @pytest.mark.parametrize("tg_fn,topo_fn", GRID)
    def test_bit_identical_placements(self, tg_fn, topo_fn):
        tg, topo = tg_fn(), topo_fn()
        clusters = mwm_contract(tg, topo.n_processors)
        assert nn_embed(tg, clusters, topo) == nn_embed(
            tg, clusters, topo, kernel="reference"
        )

    def test_singleton_clusters(self):
        tg = families.torus(4, 4)
        topo = networks.torus(4, 4)
        clusters = [[t] for t in tg.nodes]
        assert nn_embed(tg, clusters, topo) == nn_embed(
            tg, clusters, topo, kernel="reference"
        )

    def test_empty_and_single_cluster(self):
        tg = families.ring(4)
        topo = networks.ring(4)
        assert nn_embed(tg, [], topo) == {}
        both = [
            nn_embed(tg, [list(tg.nodes)], topo, kernel=k)
            for k in ("vector", "reference")
        ]
        assert both[0] == both[1]

    def test_unknown_kernel_rejected(self):
        tg = families.ring(4)
        with pytest.raises(ValueError, match="kernel"):
            nn_embed(tg, [[0], [1]], networks.ring(4), kernel="nope")


class TestMmRouteEquivalence:
    @pytest.mark.parametrize("tg_fn,topo_fn", GRID)
    def test_bit_identical_routes(self, tg_fn, topo_fn):
        tg, topo = tg_fn(), topo_fn()
        clusters = mwm_contract(tg, topo.n_processors)
        assignment = assignment_from_clusters(
            clusters, nn_embed(tg, clusters, topo)
        )
        table = mm_route(tg, topo, assignment)
        ref = mm_route(tg, topo, assignment, kernel="reference")
        assert table.routes == ref.routes
        assert table.rounds == ref.rounds

    def test_contended_scatter(self):
        # Everything hammers one star hub: many matching rounds per hop.
        tg = families.complete(6)
        topo = networks.star(6)
        assignment = {i: i for i in range(6)}
        table = mm_route(tg, topo, assignment)
        ref = mm_route(tg, topo, assignment, kernel="reference")
        assert table.routes == ref.routes
        assert table.rounds == ref.rounds

    def test_string_labels_route_deterministically(self):
        # Labels whose reprs sort differently from their indices ("p10" <
        # "p2" lexicographically) -- the old repr tie-break was fragile
        # here; link ids are label-agnostic.
        procs = [f"p{i}" for i in range(12)]
        topo = Topology(
            "ring12s", [(procs[i], procs[(i + 1) % 12]) for i in range(12)]
        )
        tg = families.complete(12)
        assignment = {i: procs[i] for i in range(12)}
        first = mm_route(tg, topo, assignment)
        again = mm_route(tg, topo, assignment)
        ref = mm_route(tg, topo, assignment, kernel="reference")
        assert first.routes == again.routes == ref.routes
        assert first.rounds == again.rounds == ref.rounds

    def test_unknown_kernel_rejected(self):
        tg = families.ring(4)
        with pytest.raises(ValueError, match="kernel"):
            mm_route(tg, networks.ring(4), {i: i for i in range(4)}, kernel="x")


class TestAnalyzeEquivalence:
    @pytest.mark.parametrize("tg_fn,topo_fn", GRID)
    def test_bit_identical_metrics(self, tg_fn, topo_fn):
        tg, topo = tg_fn(), topo_fn()
        mapping = map_computation(tg, topo)
        assert analyze(mapping) == analyze(mapping, kernel="reference")

    def test_sim_reuse_skips_resimulation(self):
        mapping = map_computation(families.nbody(15), networks.hypercube(3))
        model = CostModel()
        sim = simulate(mapping, model)
        reused = analyze(mapping, model, sim=sim)
        fresh = analyze(mapping, model)
        assert reused == fresh
        assert reused.estimated_completion_time == sim.total_time

    def test_memoize_flag_forwarded(self):
        mapping = map_computation(families.nbody(15), networks.hypercube(3))
        assert analyze(mapping, memoize=False) == analyze(mapping, memoize=True)

    def test_unknown_kernel_rejected(self):
        mapping = map_computation(families.ring(4), networks.ring(4))
        with pytest.raises(ValueError, match="kernel"):
            analyze(mapping, kernel="bogus")
