"""Tests for phase expressions (repro.graph.phase_expr)."""

import pytest
from hypothesis import given, strategies as st

from repro.graph.phase_expr import (
    EPSILON,
    Par,
    PhaseExprError,
    PhaseRef,
    Rep,
    Seq,
    parse_phase_expr,
)


def exprs(max_depth=3):
    """Hypothesis strategy for random phase expressions."""
    names = st.sampled_from(["a", "b", "c", "d"])
    leaf = st.one_of(names.map(PhaseRef), st.just(EPSILON))

    def extend(children):
        return st.one_of(
            st.lists(children, min_size=1, max_size=3).map(lambda ps: Seq(tuple(ps))),
            st.lists(children, min_size=1, max_size=3).map(lambda ps: Par(tuple(ps))),
            st.tuples(children, st.integers(min_value=0, max_value=4)).map(
                lambda t: Rep(*t)
            ),
        )

    return st.recursive(leaf, extend, max_leaves=8)


class TestConstruction:
    def test_rep_negative_rejected(self):
        with pytest.raises(PhaseExprError):
            Rep(PhaseRef("a"), -1)

    def test_rep_non_int_rejected(self):
        with pytest.raises(PhaseExprError):
            Rep(PhaseRef("a"), 1.5)

    def test_empty_seq_rejected(self):
        with pytest.raises(PhaseExprError):
            Seq(())

    def test_empty_par_rejected(self):
        with pytest.raises(PhaseExprError):
            Par(())

    def test_sugar(self):
        e = PhaseRef("a").then(PhaseRef("b")).repeat(2)
        assert e.linearize() == [frozenset({"a"}), frozenset({"b"})] * 2
        p = PhaseRef("a").alongside(PhaseRef("b"))
        assert p.linearize() == [frozenset({"a", "b"})]


class TestLinearize:
    def test_paper_nbody_shape(self):
        # ((ring; compute1)^4; chordal; compute2)^2 with n=7 -> half=4.
        e = parse_phase_expr("((ring; compute1)^4; chordal; compute2)^2")
        steps = e.linearize()
        assert len(steps) == 2 * (2 * 4 + 2)
        assert steps[0] == frozenset({"ring"})
        assert steps[8] == frozenset({"chordal"})

    def test_epsilon_is_empty(self):
        assert EPSILON.linearize() == []

    def test_rep_zero(self):
        assert Rep(PhaseRef("a"), 0).linearize() == []
        assert Rep(PhaseRef("a"), 0).phase_names() == set()

    def test_par_zips_streams(self):
        e = Par((Seq((PhaseRef("a"), PhaseRef("b"))), PhaseRef("c")))
        assert e.linearize() == [frozenset({"a", "c"}), frozenset({"b"})]

    def test_par_with_epsilon(self):
        e = Par((PhaseRef("a"), EPSILON))
        assert e.linearize() == [frozenset({"a"})]

    def test_max_steps_guard(self):
        e = Rep(Rep(PhaseRef("a"), 1000), 1000)
        with pytest.raises(PhaseExprError):
            e.linearize(max_steps=10_000)

    def test_count_occurrences(self):
        e = parse_phase_expr("(a; b)^3; a")
        assert e.count_occurrences() == {"a": 4, "b": 3}

    @given(exprs())
    def test_linearize_names_match_phase_names(self, e):
        steps = e.linearize(max_steps=100_000)
        seen = set().union(*steps) if steps else set()
        assert seen <= e.phase_names()

    @given(exprs(), st.integers(min_value=0, max_value=3))
    def test_rep_multiplies_length(self, e, k):
        base = e.linearize(max_steps=100_000)
        assert Rep(e, k).linearize(max_steps=1_000_000) == base * k


class TestParser:
    def test_single_name(self):
        assert parse_phase_expr("ring") == PhaseRef("ring")

    def test_precedence_rep_tightest(self):
        e = parse_phase_expr("a; b^2")
        assert e == Seq((PhaseRef("a"), Rep(PhaseRef("b"), 2)))

    def test_par_binds_loosest(self):
        e = parse_phase_expr("a; b || c")
        assert isinstance(e, Par)

    def test_parens(self):
        e = parse_phase_expr("(a; b)^2")
        assert e == Rep(Seq((PhaseRef("a"), PhaseRef("b"))), 2)

    def test_epsilon_keywords(self):
        assert parse_phase_expr("eps") == EPSILON
        assert parse_phase_expr("epsilon") == EPSILON

    def test_indexed_phase_names(self):
        # Names produced by LaRCS indexed families round-trip.
        e = parse_phase_expr("fly[0]; fly[1]; compute")
        assert e == Seq((PhaseRef("fly[0]"), PhaseRef("fly[1]"), PhaseRef("compute")))
        assert parse_phase_expr(str(e)) == e

    def test_nested_rep(self):
        e = parse_phase_expr("a^2^3")
        assert e.linearize() == [frozenset({"a"})] * 6

    def test_bad_character(self):
        with pytest.raises(PhaseExprError):
            parse_phase_expr("a @ b")

    def test_trailing_garbage(self):
        with pytest.raises(PhaseExprError):
            parse_phase_expr("a b")

    def test_missing_rparen(self):
        with pytest.raises(PhaseExprError):
            parse_phase_expr("(a; b")

    def test_rep_requires_int(self):
        with pytest.raises(PhaseExprError):
            parse_phase_expr("a^b")

    @given(exprs())
    def test_str_roundtrip(self, e):
        reparsed = parse_phase_expr(str(e))
        assert reparsed.linearize(max_steps=100_000) == e.linearize(
            max_steps=100_000
        )
