"""Tests for the supervised task-execution core (repro.runtime)."""

import pickle
import time

import pytest

from repro.errors import (
    RetriesExhausted,
    TaskTimeout,
    WorkerCrash,
    exit_code_for,
)
from repro.pipeline import ArtifactCache
from repro.runtime import (
    ChaosPlan,
    Journal,
    RetryPolicy,
    SimulatedWorkerCrash,
    TransientChaosError,
    plan_from_env,
    run_supervised,
)
from repro.util.pools import run_ordered

EXECUTORS = ("serial", "thread", "process")

#: A retry policy with near-zero sleeps, for fast multi-attempt tests.
FAST_RETRY = RetryPolicy(max_attempts=3, backoff=0.001)


def _double(x):
    return 2 * x


def _raise_on_negative(x):
    if x < 0:
        raise ValueError(f"negative payload {x}")
    return x


def _sleep_forever(x):
    time.sleep(60)
    return x


class TestRunSupervisedBasics:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_results_in_input_order(self, executor):
        results = run_supervised(
            _double, [3, 1, 4, 1, 5], executor=executor, max_workers=2
        )
        assert [r.value for r in results] == [6, 2, 8, 2, 10]
        assert [r.index for r in results] == [0, 1, 2, 3, 4]
        assert all(r.ok and r.status == "ok" for r in results)
        assert all(r.trace() == [(1, "ok", 0.0)] for r in results)

    def test_default_keys(self):
        results = run_supervised(_double, [1, 2])
        assert [r.key for r in results] == ["task:0", "task:1"]

    def test_explicit_keys(self):
        results = run_supervised(_double, [1, 2], keys=["a", "b"])
        assert [r.key for r in results] == ["a", "b"]

    def test_empty_batch(self):
        assert run_supervised(_double, []) == []

    def test_unknown_executor(self):
        with pytest.raises(ValueError, match="unknown executor"):
            run_supervised(_double, [1], executor="gpu")

    @pytest.mark.parametrize("bad", [0, -1, -7])
    def test_nonpositive_max_workers(self, bad):
        with pytest.raises(ValueError, match="max_workers must be >= 1"):
            run_supervised(_double, [1, 2], executor="thread", max_workers=bad)

    def test_key_count_mismatch(self):
        with pytest.raises(ValueError, match="keys for"):
            run_supervised(_double, [1, 2], keys=["only-one"])

    def test_nonpositive_deadline(self):
        with pytest.raises(ValueError, match="deadline must be > 0"):
            run_supervised(_double, [1], deadline=0.0)

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_failure_is_a_value(self, executor):
        results = run_supervised(
            _raise_on_negative, [1, -2, 3], executor=executor, max_workers=2
        )
        assert [r.ok for r in results] == [True, False, True]
        failed = results[1]
        assert failed.status == "failed"
        assert isinstance(failed.error, ValueError)
        assert "negative payload -2" in str(failed.error)
        assert failed.trace() == [(1, "exception", 0.0)]

    def test_strict_raises_the_original_exception(self):
        with pytest.raises(ValueError, match="negative payload -2"):
            run_supervised(_raise_on_negative, [1, -2], strict=True)

    def test_strict_raises_first_failure_by_input_order(self):
        with pytest.raises(ValueError, match="negative payload -1"):
            run_supervised(
                _raise_on_negative, [-1, -2, -3],
                executor="thread", max_workers=3, strict=True,
            )


class TestRunOrdered:
    def test_values_in_order(self):
        assert run_ordered(_double, [1, 2, 3], executor="thread") == [2, 4, 6]

    @pytest.mark.parametrize("bad", [0, -1])
    def test_nonpositive_max_workers_raise(self, bad):
        with pytest.raises(ValueError, match="1 means serial"):
            run_ordered(_double, [1, 2], executor="thread", max_workers=bad)

    def test_one_worker_means_serial(self):
        # Documented contract: max_workers=1 demotes to the serial path
        # (same results, no pool) rather than erroring.
        assert run_ordered(
            _double, [1, 2, 3], executor="process", max_workers=1
        ) == [2, 4, 6]

    def test_unknown_executor(self):
        with pytest.raises(ValueError, match="unknown executor"):
            run_ordered(_double, [1], executor="gpu")

    def test_worker_exception_propagates(self):
        with pytest.raises(ValueError, match="negative payload"):
            run_ordered(_raise_on_negative, [1, -5], executor="serial")


class TestDeadlines:
    def test_process_hang_is_killed_not_awaited(self):
        start = time.perf_counter()
        results = run_supervised(
            _sleep_forever, [1], executor="process", deadline=0.2
        )
        elapsed = time.perf_counter() - start
        assert elapsed < 10, "hung worker was awaited, not killed"
        (r,) = results
        assert not r.ok
        assert isinstance(r.error, TaskTimeout)
        assert r.error.deadline == 0.2
        assert r.trace() == [(1, "timeout", 0.0)]

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_chaos_hang_times_out_identically(self, executor):
        chaos = ChaosPlan(hangs=[(0, 1)], hang_s=0.3)
        results = run_supervised(
            _double, [7, 8], executor=executor, max_workers=2,
            deadline=0.05, chaos=chaos,
        )
        assert not results[0].ok
        assert isinstance(results[0].error, TaskTimeout)
        assert results[0].trace() == [(1, "timeout", 0.0)]
        assert results[1].ok and results[1].value == 16

    def test_timeout_exit_code_is_3(self):
        results = run_supervised(
            _double, [1], deadline=0.01, chaos=ChaosPlan(hangs=[(0, 1)])
        )
        assert exit_code_for(results[0].error) == 3


class TestCrashes:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_chaos_crash_reports_worker_crash(self, executor):
        chaos = ChaosPlan(crashes=[(1, 1)])
        results = run_supervised(
            _double, [1, 2, 3], executor=executor, max_workers=2, chaos=chaos
        )
        assert [r.ok for r in results] == [True, False, True]
        assert isinstance(results[1].error, WorkerCrash)
        assert results[1].trace() == [(1, "crash", 0.0)]

    def test_process_crash_carries_the_exit_code(self):
        from repro.runtime import CHAOS_EXIT_CODE

        results = run_supervised(
            _double, [1], executor="process", chaos=ChaosPlan(crashes=[(0, 1)])
        )
        assert isinstance(results[0].error, WorkerCrash)
        assert results[0].error.exitcode == CHAOS_EXIT_CODE

    def test_simulated_crash_is_not_an_ordinary_exception(self):
        # except Exception in task code must not be able to swallow it.
        assert issubclass(SimulatedWorkerCrash, BaseException)
        assert not issubclass(SimulatedWorkerCrash, Exception)


class TestRetries:
    def test_transient_then_success(self):
        chaos = ChaosPlan(transients=[(0, 1), (0, 2)])
        (r,) = run_supervised(_double, [5], retry=FAST_RETRY, chaos=chaos)
        assert r.ok and r.value == 10
        assert [(n, o) for n, o, _ in r.trace()] == [
            (1, "exception"), (2, "exception"), (3, "ok")
        ]
        assert all(b > 0 for _, o, b in r.trace() if o != "ok")

    def test_retries_exhausted(self):
        chaos = ChaosPlan(transients=[(0, a) for a in (1, 2, 3)])
        (r,) = run_supervised(_double, [5], retry=FAST_RETRY, chaos=chaos)
        assert not r.ok
        assert isinstance(r.error, RetriesExhausted)
        assert len(r.error.attempts) == 3
        assert exit_code_for(r.error) == 4

    def test_exhausted_timeouts_keep_exit_code_3(self):
        chaos = ChaosPlan(hangs=[(0, 1), (0, 2)], hang_s=0.2)
        (r,) = run_supervised(
            _double, [5], deadline=0.02,
            retry=RetryPolicy(max_attempts=2, backoff=0.001), chaos=chaos,
        )
        assert isinstance(r.error, RetriesExhausted)
        assert r.error.last_outcome == "timeout"
        assert exit_code_for(r.error) == 3

    def test_retry_on_filter(self):
        # An exception outcome with retries reserved for crashes only:
        # fail immediately, single attempt.
        policy = RetryPolicy(max_attempts=3, backoff=0.001, retry_on=("crash",))
        (r,) = run_supervised(_raise_on_negative, [-1], retry=policy)
        assert not r.ok and len(r.attempts) == 1
        assert isinstance(r.error, ValueError)

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_trace_is_identical_across_executors(self, executor):
        chaos = ChaosPlan(transients=[(0, 1), (2, 1), (2, 2)])
        results = run_supervised(
            _double, [1, 2, 3], executor=executor, max_workers=3,
            retry=FAST_RETRY, chaos=chaos,
        )
        assert [r.trace() for r in results] == _REFERENCE_TRACES

    def test_errors_pickle_round_trip(self):
        chaos = ChaosPlan(transients=[(0, a) for a in (1, 2, 3)])
        (r,) = run_supervised(_double, [5], retry=FAST_RETRY, chaos=chaos)
        clone = pickle.loads(pickle.dumps(r.error))
        assert isinstance(clone, RetriesExhausted)
        assert clone.key == r.error.key
        assert clone.attempts == r.error.attempts
        assert clone.last_outcome == r.error.last_outcome


def _reference_traces():
    chaos = ChaosPlan(transients=[(0, 1), (2, 1), (2, 2)])
    return [
        r.trace()
        for r in run_supervised(
            _double, [1, 2, 3], retry=FAST_RETRY, chaos=chaos
        )
    ]


_REFERENCE_TRACES = _reference_traces()


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="backoff"):
            RetryPolicy(backoff=-1.0)
        with pytest.raises(ValueError, match="backoff"):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError, match="unknown retry_on"):
            RetryPolicy(retry_on=("timeout", "oops"))

    def test_delay_is_deterministic(self):
        a = RetryPolicy(seed=7)
        b = RetryPolicy(seed=7)
        assert a.delay("mwm", 2) == b.delay("mwm", 2)

    def test_delay_varies_with_seed_key_attempt(self):
        base = RetryPolicy(seed=0).delay("mwm", 1)
        assert RetryPolicy(seed=1).delay("mwm", 1) != base
        assert RetryPolicy(seed=0).delay("greedy", 1) != base
        assert RetryPolicy(seed=0).delay("mwm", 2) != base

    def test_delay_grows_exponentially(self):
        policy = RetryPolicy(backoff=0.1, multiplier=2.0, jitter=0.0)
        assert policy.delay("k", 1) == pytest.approx(0.1)
        assert policy.delay("k", 2) == pytest.approx(0.2)
        assert policy.delay("k", 3) == pytest.approx(0.4)


class TestJournal:
    def _journal(self):
        return Journal(ArtifactCache(), "run-key")

    def test_resumed_run_serves_journalled_results(self):
        journal = self._journal()
        first = run_supervised(_double, [1, 2, 3], journal=journal)
        assert not any(r.journal_hit for r in first)
        second = run_supervised(_double, [1, 2, 3], journal=journal)
        assert all(r.journal_hit for r in second)
        assert [r.value for r in second] == [r.value for r in first]
        assert [r.trace() for r in second] == [r.trace() for r in first]

    def test_partial_journal_runs_only_the_remainder(self):
        journal = self._journal()
        run_supervised(_double, [1, 2], keys=["a", "b"], journal=journal)
        results = run_supervised(
            _double, [1, 2, 3], keys=["a", "b", "c"], journal=journal
        )
        assert [r.journal_hit for r in results] == [True, True, False]
        assert [r.value for r in results] == [2, 4, 6]

    def test_failures_are_journalled_too(self):
        journal = self._journal()
        run_supervised(_raise_on_negative, [-1], journal=journal)
        (r,) = run_supervised(_raise_on_negative, [-1], journal=journal)
        assert r.journal_hit and not r.ok
        assert isinstance(r.error, ValueError)

    def test_different_run_keys_do_not_share_entries(self):
        cache = ArtifactCache()
        run_supervised(_double, [1], journal=Journal(cache, "run-a"))
        (r,) = run_supervised(_double, [1], journal=Journal(cache, "run-b"))
        assert not r.journal_hit


class TestChaosPlan:
    def test_round_trip(self):
        plan = ChaosPlan(
            crashes=[(0, 1)], hangs=[(1, 2)], transients=[(2, 1)],
            kills=[(3, 1)], hang_s=0.5,
        )
        assert ChaosPlan.from_dict(plan.to_dict()) == plan

    def test_unknown_keys_raise(self):
        with pytest.raises(ValueError, match="unknown chaos-plan keys"):
            ChaosPlan.from_dict({"crashes": [[0, 1]]})

    def test_random_is_reproducible(self):
        a = ChaosPlan.random(3, 10, crash=0.2, hang=0.2, transient=0.2)
        b = ChaosPlan.random(3, 10, crash=0.2, hang=0.2, transient=0.2)
        assert a == b
        assert not a.is_empty

    def test_transient_injection_raises(self):
        plan = ChaosPlan(transients=[(0, 1)])
        with pytest.raises(TransientChaosError):
            plan.inject(0, 1, in_child=False)
        plan.inject(0, 2, in_child=False)  # unscheduled attempt: no-op

    def test_plan_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS", raising=False)
        assert plan_from_env() is None
        monkeypatch.setenv("REPRO_CHAOS", '{"crash": [[0, 1]]}')
        assert plan_from_env() == ChaosPlan(crashes=[(0, 1)])
        monkeypatch.setenv("REPRO_CHAOS", '{"crash": []}')
        assert plan_from_env() is None  # empty plan means no chaos
        monkeypatch.setenv("REPRO_CHAOS", "{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            plan_from_env()
