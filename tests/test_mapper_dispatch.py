"""Tests for MAPPER's three-way dispatch (repro.mapper.dispatch)."""

import pytest

from repro.arch import networks
from repro.graph import families
from repro.larcs import stdlib
from repro.mapper import NotApplicableError, map_computation


class TestAutoDispatch:
    def test_nameable_takes_canned_path(self):
        m = map_computation(families.ring(8), networks.hypercube(3))
        assert m.provenance == "canned"

    def test_cayley_takes_group_path(self):
        tg = stdlib.load("voting", m=3)  # no family tag -> not canned
        m = map_computation(tg, networks.hypercube(2))
        assert m.provenance == "group"
        assert sorted(map(sorted, m.clusters().values())) == [
            [0, 4],
            [1, 5],
            [2, 6],
            [3, 7],
        ]

    def test_arbitrary_takes_mwm_path(self):
        tg = stdlib.load("jacobi", rows=3, cols=4)  # tuple labels, no family
        m = map_computation(tg, networks.mesh(2, 3))
        assert m.provenance == "mwm"

    def test_canned_miss_falls_through(self):
        # A ring whose size doesn't divide: canned ring->ring identity
        # misses, the group path catches it.
        tg = families.ring(12)
        m = map_computation(tg, networks.ring(4))
        assert m.provenance in ("group", "mwm")

    def test_routes_attached_and_valid(self):
        m = map_computation(families.nbody(15), networks.hypercube(3))
        m.validate(require_routes=True)
        assert m.routing_rounds.keys() == {"ring", "chordal"}

    def test_route_false_skips_routing(self):
        m = map_computation(families.ring(8), networks.hypercube(3), route=False)
        assert m.routes == {}


class TestForcedStrategies:
    def test_force_canned(self):
        m = map_computation(
            families.mesh(4, 4), networks.hypercube(4), strategy="canned"
        )
        assert m.provenance == "canned"

    def test_force_canned_fails_loudly(self):
        with pytest.raises(NotApplicableError):
            map_computation(
                stdlib.load("voting", m=3), networks.hypercube(2), strategy="canned"
            )

    def test_force_group(self):
        m = map_computation(
            families.hypercube(3), networks.hypercube(2), strategy="group"
        )
        assert m.provenance == "group"

    def test_force_group_fails_on_tree(self):
        with pytest.raises(NotApplicableError):
            map_computation(
                families.full_binary_tree(3), networks.hypercube(2), strategy="group"
            )

    def test_force_mwm_everywhere(self):
        m = map_computation(families.ring(8), networks.hypercube(3), strategy="mwm")
        assert m.provenance == "mwm"
        m.validate(require_routes=True)

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            map_computation(families.ring(4), networks.ring(4), strategy="magic")


class TestLoadBound:
    def test_respected_by_mwm(self):
        tg = stdlib.load("sor", rows=4, cols=4)
        m = map_computation(tg, networks.mesh(2, 2), load_bound=4)
        assert all(len(ts) <= 4 for ts in m.clusters().values())

    def test_group_violating_bound_falls_to_mwm(self):
        tg = stdlib.load("voting", m=3)
        # Group contraction onto 2 processors makes cosets of 4 > bound 3...
        # infeasible outright (2 procs x 3 < 8), so use 4 procs bound 1:
        # cosets have 2 tasks > 1, infeasible too; widen to a feasible case:
        m = map_computation(tg, networks.hypercube(3), load_bound=1)
        assert m.provenance in ("group", "mwm")
        assert all(len(ts) == 1 for ts in m.clusters().values())


class TestEndToEndMatrix:
    @pytest.mark.parametrize(
        "tg_factory,topo_factory",
        [
            (lambda: families.nbody(15), lambda: networks.hypercube(3)),
            (lambda: families.nbody(9), lambda: networks.mesh(3, 3)),
            (lambda: stdlib.load("fft", m=4), lambda: networks.hypercube(3)),
            (lambda: stdlib.load("jacobi", rows=4, cols=4), lambda: networks.mesh(2, 4)),
            (lambda: stdlib.load("dnc", m=5), lambda: networks.hypercube(3)),
            (lambda: families.binomial_tree(6), lambda: networks.mesh(8, 8)),
            (lambda: stdlib.load("cannon", q=4), lambda: networks.torus(2, 2)),
            (lambda: stdlib.load("pipeline", n=10), lambda: networks.linear(4)),
            (lambda: families.complete(6), lambda: networks.star(4)),
            (lambda: stdlib.load("annealing", rows=4, cols=4), lambda: networks.hypercube(3)),
        ],
    )
    def test_maps_and_validates(self, tg_factory, topo_factory):
        tg = tg_factory()
        topo = topo_factory()
        m = map_computation(tg, topo)
        m.validate(require_routes=True)
        # Every route is a shortest path under MM-Route.
        for (phase, idx), route in m.routes.items():
            edge = tg.comm_phase(phase).edges[idx]
            assert len(route) - 1 == topo.distance(
                m.proc_of(edge.src), m.proc_of(edge.dst)
            )
