"""Tests for dynamic spawning (repro.graph.dynamic)."""

import networkx as nx
import pytest

from repro.arch import networks
from repro.graph import families
from repro.graph.dynamic import (
    IncrementalMapper,
    SpawnPattern,
    binomial_spawner,
    full_binary_spawner,
)
from repro.mapper import map_computation
from repro.mapper.contraction.mwm import total_ipc


class TestSpawnPatterns:
    def test_full_binary_unfold_matches_family(self):
        dyn = full_binary_spawner(3).unfold()
        fam = families.full_binary_tree(3)
        assert set(dyn.nodes) == set(fam.nodes)
        assert set(dyn.comm_phase("spawn").pairs()) == set(
            fam.comm_phase("down").pairs()
        )

    def test_binomial_unfold_matches_family(self):
        dyn = binomial_spawner(5).unfold()
        fam = families.binomial_tree(5)
        assert set(dyn.nodes) == set(fam.nodes)
        assert set(dyn.comm_phase("spawn").pairs()) == set(
            fam.comm_phase("divide").pairs()
        )

    def test_unfold_is_tree(self):
        tg = full_binary_spawner(4).unfold()
        assert nx.is_tree(tg.static_graph())

    def test_merge_mirrors_spawn(self):
        tg = binomial_spawner(4).unfold()
        spawn = set(tg.comm_phase("spawn").pairs())
        merge = set(tg.comm_phase("merge").pairs())
        assert merge == {(v, u) for u, v in spawn}

    def test_depth_zero(self):
        tg = full_binary_spawner(0).unfold()
        assert tg.n_tasks == 1 and tg.n_edges == 0

    def test_duplicate_label_rejected(self):
        bad = SpawnPattern("bad", 0, lambda t, d: [0], steps=2)
        with pytest.raises(ValueError, match="re-spawns"):
            bad.unfold()

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            full_binary_spawner(-1)
        with pytest.raises(ValueError):
            binomial_spawner(-2)

    def test_phase_expression(self):
        tg = full_binary_spawner(2).unfold()
        steps = tg.phase_expr.linearize()
        assert [sorted(s)[0] for s in steps] == ["spawn", "work", "merge"]


class TestIncrementalMapper:
    def test_online_mapping_valid(self):
        pattern = binomial_spawner(5)
        mapper = IncrementalMapper(networks.hypercube(3))
        mapping = mapper.run(pattern)
        mapping.validate(require_routes=True)
        assert mapping.provenance == "incremental"
        assert len(mapping.assignment) == 32

    def test_load_balanced(self):
        pattern = full_binary_spawner(4)  # 31 tasks
        mapper = IncrementalMapper(networks.hypercube(3))
        mapping = mapper.run(pattern)
        sizes = [len(ts) for ts in mapping.clusters().values()]
        assert max(sizes) - min(sizes) <= 1

    def test_capacity_respected(self):
        pattern = full_binary_spawner(3)  # 15 tasks
        mapper = IncrementalMapper(networks.hypercube(2), capacity=4)
        mapping = mapper.run(pattern)
        assert all(len(ts) <= 4 for ts in mapping.clusters().values())

    def test_capacity_exhausted(self):
        mapper = IncrementalMapper(networks.ring(2), capacity=1)
        mapper.place_root(0)
        mapper.spawn(0, 1)
        with pytest.raises(RuntimeError, match="capacity"):
            mapper.spawn(0, 2)

    def test_root_placement_unique(self):
        mapper = IncrementalMapper(networks.ring(4))
        mapper.place_root(0)
        with pytest.raises(RuntimeError):
            mapper.place_root(1)

    def test_spawn_requires_placed_parent(self):
        mapper = IncrementalMapper(networks.ring(4))
        mapper.place_root(0)
        with pytest.raises(KeyError):
            mapper.spawn(99, 1)
        with pytest.raises(ValueError):
            mapper.spawn(0, 0)  # already placed

    def test_children_stay_near_parents_when_space(self):
        # With ample capacity on a large ring, the first child of the root
        # lands on the root's processor or a neighbour.
        mapper = IncrementalMapper(networks.ring(16))
        root_proc = mapper.place_root(0)
        child_proc = mapper.spawn(0, 1)
        assert mapper.topology.distance(root_proc, child_proc) <= 1

    def test_online_vs_offline_quality(self):
        # The online mapping cannot beat the offline MWM contraction, but
        # must stay within a reasonable factor on IPC.
        pattern = binomial_spawner(6)
        tg = pattern.unfold()
        online = IncrementalMapper(networks.hypercube(3)).run(pattern)
        offline = map_computation(tg, networks.hypercube(3), strategy="mwm")

        def ipc(mapping):
            clusters = list(mapping.clusters().values())
            return total_ipc(tg, clusters)

        assert ipc(online) <= 4 * max(ipc(offline), 1.0)


class TestIncrementalMapperCapacities:
    """Vector-capacity gating of online placement (PR 10)."""

    @staticmethod
    def _machine(base, spec):
        from repro.arch.capacity import Capacities
        from repro.arch.hierarchy import with_capacities

        return with_capacities(
            base, Capacities.from_spec(spec, base.processors)
        )

    def test_unit_resource_bounds_tasks_per_proc(self):
        topo = self._machine(
            networks.hypercube(2),
            {"slots": {"demand": "unit", "cap": 4.0}},
        )
        mapper = IncrementalMapper(topo)  # topology capacities picked up
        mapping = mapper.run(full_binary_spawner(3))  # 15 tasks on 4 procs
        assert all(len(ts) <= 4 for ts in mapping.clusters().values())

    def test_weight_resource_bounds_consumed_demand(self):
        topo = self._machine(
            networks.ring(4),
            {"mem": {"demand": "weight", "cap": 3.0}},
        )
        mapper = IncrementalMapper(topo)
        mapper.place_root(0, weight=2.0)
        for child in (1, 2, 3):
            mapper.spawn(0, child, weight=2.0)
        loads = {}
        for task, proc in mapper.assignment.items():
            loads[proc] = loads.get(proc, 0.0) + 2.0
        assert max(loads.values()) <= 3.0  # one weight-2 task per proc
        with pytest.raises(RuntimeError, match="spare capacity"):
            mapper.spawn(0, 4, weight=2.0)

    def test_partial_headroom_blocks_placement(self):
        # slots would admit 4 tasks per proc, but mem admits only one
        # weight-2 task: the tighter resource governs.
        topo = self._machine(
            networks.ring(2),
            {"slots": {"demand": "unit", "cap": 4.0},
             "mem": {"demand": "weight", "cap": 2.5}},
        )
        mapper = IncrementalMapper(topo)
        mapper.place_root(0, weight=2.0)
        mapper.spawn(0, 1, weight=2.0)   # lands on the other proc
        procs = set(mapper.assignment.values())
        assert len(procs) == 2
        with pytest.raises(RuntimeError, match="spare capacity"):
            mapper.spawn(0, 2, weight=2.0)
        # A light task still fits on either processor's remaining mem.
        mapper.spawn(0, 3, weight=0.5)

    def test_capacity_context_unwrapped(self):
        from repro.arch.capacity import Capacities

        base = networks.ring(4)
        caps = Capacities.from_spec(
            {"slots": {"demand": "unit", "cap": 2.0}}, base.processors
        )
        tg = full_binary_spawner(2).unfold()
        mapper = IncrementalMapper(base, capacity=caps.context(tg, base))
        mapping = mapper.run(full_binary_spawner(2))  # 7 tasks, 4 procs
        assert all(len(ts) <= 2 for ts in mapping.clusters().values())

    def test_explicit_capacities_override_topology(self):
        topo = self._machine(
            networks.ring(2),
            {"slots": {"demand": "unit", "cap": 1.0}},
        )
        from repro.arch.capacity import Capacities

        looser = Capacities.from_spec(
            {"slots": {"demand": "unit", "cap": 8.0}}, topo.processors
        )
        mapper = IncrementalMapper(topo, capacity=looser)
        mapper.place_root(0)
        for child in range(1, 4):
            mapper.spawn(0, child)  # would exhaust the attached cap of 1

    def test_bad_capacity_type_rejected(self):
        with pytest.raises(TypeError, match="capacity"):
            IncrementalMapper(networks.ring(4), capacity="lots")

    def test_scalar_bound_still_works_on_capacity_machine(self):
        topo = self._machine(
            networks.ring(4),
            {"slots": {"demand": "unit", "cap": 16.0}},
        )
        mapper = IncrementalMapper(topo, capacity=1)
        mapper.place_root(0)
        mapper.spawn(0, 1)
        mapper.spawn(0, 2)
        mapper.spawn(0, 3)
        with pytest.raises(RuntimeError, match="spare capacity"):
            mapper.spawn(0, 4)
