"""Tests for the contraction algorithms (MWM-Contract, group, baselines)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import TaskGraph, families
from repro.graph.paper_examples import (
    FIG5_LOAD_BOUND,
    FIG5_OPTIMAL_IPC,
    FIG5_PROCESSORS,
    fig5_task_graph,
)
from repro.larcs import stdlib
from repro.mapper.contraction import (
    bfs_contract,
    group_contract,
    mwm_contract,
    random_contract,
    total_ipc,
)
from repro.mapper.mapping import NotApplicableError


def check_contraction(tg, clusters, n_procs, bound):
    """Structural invariants every contraction must satisfy."""
    assert len(clusters) <= n_procs
    flat = [t for c in clusters for t in c]
    assert sorted(flat, key=repr) == sorted(tg.nodes, key=repr)
    assert all(1 <= len(c) <= bound for c in clusters)


def random_task_graphs():
    @st.composite
    def build(draw):
        n = draw(st.integers(min_value=2, max_value=14))
        tg = TaskGraph("rand")
        tg.add_nodes(range(n))
        ph = tg.add_comm_phase("c")
        n_edges = draw(st.integers(min_value=0, max_value=2 * n))
        for _ in range(n_edges):
            u = draw(st.integers(0, n - 1))
            v = draw(st.integers(0, n - 1))
            if u != v:
                ph.add(u, v, float(draw(st.integers(1, 9))))
        p = draw(st.integers(min_value=1, max_value=n))
        return tg, p

    return build()


class TestMwmContractFig5:
    def test_reproduces_optimal_ipc_6(self):
        tg = fig5_task_graph()
        clusters = mwm_contract(tg, FIG5_PROCESSORS, load_bound=FIG5_LOAD_BOUND)
        check_contraction(tg, clusters, FIG5_PROCESSORS, FIG5_LOAD_BOUND)
        assert total_ipc(tg, clusters) == FIG5_OPTIMAL_IPC

    def test_recovers_intended_clusters(self):
        clusters = mwm_contract(fig5_task_graph(), 3, load_bound=4)
        got = sorted(sorted(c) for c in clusters)
        assert got == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9, 10, 11]]

    def test_weight15_edge_crosses_no_cluster(self):
        # The contraction internalises the rejected edge at the matching
        # stage: 1 and 2 end up together even though the greedy stage
        # refused the merge.
        clusters = mwm_contract(fig5_task_graph(), 3, load_bound=4)
        owner = {t: i for i, c in enumerate(clusters) for t in c}
        assert owner[1] == owner[2]


class TestMwmContractGeneral:
    def test_n_leq_p_keeps_singletons(self):
        tg = families.ring(4)
        clusters = mwm_contract(tg, 8)
        assert sorted(map(tuple, clusters)) == [(0,), (1,), (2,), (3,)]

    def test_two_tasks_one_proc(self):
        tg = families.ring(2)
        clusters = mwm_contract(tg, 1)
        assert clusters == [[0, 1]]

    def test_ring_contraction_is_contiguous_quality(self):
        # MWM on a uniform ring should never be worse than cutting n edges
        # and always cuts at least P edges.
        tg = families.ring(16)
        clusters = mwm_contract(tg, 4)
        ipc = total_ipc(tg, clusters)
        assert 4 <= ipc <= 16

    def test_respects_explicit_bound(self):
        tg = families.complete(8)
        clusters = mwm_contract(tg, 4, load_bound=2)
        check_contraction(tg, clusters, 4, 2)

    def test_infeasible_bound_rejected(self):
        with pytest.raises(ValueError):
            mwm_contract(families.ring(8), 2, load_bound=3)

    def test_invalid_procs(self):
        with pytest.raises(ValueError):
            mwm_contract(families.ring(4), 0)

    def test_empty_graph(self):
        assert mwm_contract(TaskGraph(), 3) == []

    def test_disconnected_graph(self):
        tg = TaskGraph()
        tg.add_nodes(range(8))
        ph = tg.add_comm_phase("c")
        ph.add(0, 1, 5.0)
        ph.add(2, 3, 5.0)  # 4 isolated tasks besides
        clusters = mwm_contract(tg, 2)
        check_contraction(tg, clusters, 2, 4)

    def test_beats_or_matches_random_on_structure(self):
        tg = stdlib.load("jacobi", rows=6, cols=6)
        p = 4
        mwm_ipc = total_ipc(tg, mwm_contract(tg, p))
        rand_ipc = total_ipc(tg, random_contract(tg, p, seed=1))
        assert mwm_ipc <= rand_ipc

    @settings(max_examples=40, deadline=None)
    @given(random_task_graphs())
    def test_invariants_on_random_graphs(self, case):
        tg, p = case
        bound = math.ceil(tg.n_tasks / p)
        clusters = mwm_contract(tg, p)
        check_contraction(tg, clusters, p, bound)

    @settings(max_examples=25, deadline=None)
    @given(random_task_graphs())
    def test_never_worse_than_random_baseline(self, case):
        tg, p = case
        mwm_ipc = total_ipc(tg, mwm_contract(tg, p))
        base = min(
            total_ipc(tg, random_contract(tg, p, seed=s)) for s in range(3)
        )
        # Heuristic: with near-full load bounds a lucky random draw can win
        # by an edge or two, but MWM must never lose badly.
        assert mwm_ipc <= base + max(2.0, tg.total_volume() * 0.5)


class TestGroupContract:
    def test_fig4_example(self):
        tg = stdlib.load("voting", m=3)
        gc = group_contract(tg, 4)
        assert sorted(map(sorted, gc.clusters)) == [[0, 4], [1, 5], [2, 6], [3, 7]]
        assert gc.normal
        assert gc.internalized == {"hop[0]": 0, "hop[1]": 0, "hop[2]": 2}

    def test_fig4_subgroup_is_e0_e4(self):
        tg = stdlib.load("voting", m=3)
        gc = group_contract(tg, 4)
        assert sorted(str(g) for g in gc.subgroup) == [
            "(0)(1)(2)(3)(4)(5)(6)(7)",
            "(04)(15)(26)(37)",
        ]

    def test_perfect_balance_always(self):
        tg = stdlib.load("voting", m=4)  # 16 tasks
        for p in (2, 4, 8):
            gc = group_contract(tg, p)
            assert len(gc.clusters) == p
            assert all(len(c) == 16 // p for c in gc.clusters)

    def test_ring_contraction_is_striped(self):
        # Z_12 has a unique subgroup of order 3, <g^4>, whose cosets are the
        # "striped" clusters {x, x+4, x+8}: perfectly balanced, and the
        # quotient is a 4-ring of clusters, but no ring edge is internal
        # (an edge a -> a*g is internal iff g is in H, and g is not).
        tg = families.ring(12)
        gc = group_contract(tg, 4)
        assert len(gc.clusters) == 4
        assert all(len(c) == 3 for c in gc.clusters)
        assert sorted(map(sorted, gc.clusters)) == [
            [0, 4, 8],
            [1, 5, 9],
            [2, 6, 10],
            [3, 7, 11],
        ]
        assert gc.internalized["ring"] == 0
        # The quotient graph is a directed 4-cycle.
        assert len(gc.quotient_edges["ring"]) == 4

    def test_nbody_is_applicable(self):
        tg = families.nbody(15)
        gc = group_contract(tg, 5)
        assert len(gc.clusters) == 5 and all(len(c) == 3 for c in gc.clusters)

    def test_hypercube_phases(self):
        tg = families.hypercube(3)
        gc = group_contract(tg, 4)
        assert len(gc.clusters) == 4
        # Exactly one dimension becomes internal in each cluster.
        assert sum(v for v in gc.internalized.values()) == 2

    def test_non_divisor_rejected(self):
        with pytest.raises(NotApplicableError):
            group_contract(families.ring(8), 3)

    def test_non_bijection_rejected(self):
        with pytest.raises(NotApplicableError):
            group_contract(families.star(8), 2)

    def test_non_cayley_rejected(self):
        with pytest.raises(NotApplicableError):
            group_contract(families.full_binary_tree(2), 1)

    def test_trivial_contraction(self):
        tg = families.ring(6)
        gc = group_contract(tg, 6)
        assert all(len(c) == 1 for c in gc.clusters)

    def test_require_normal(self):
        tg = stdlib.load("voting", m=3)
        gc = group_contract(tg, 2, require_normal=True)
        assert gc.normal and len(gc.clusters) == 2

    def test_quotient_edges_consistent(self):
        tg = stdlib.load("voting", m=3)
        gc = group_contract(tg, 4)
        for name, edges in gc.quotient_edges.items():
            for i, j in edges:
                assert 0 <= i < 4 and 0 <= j < 4 and i != j


class TestBaselines:
    def test_random_respects_bound(self):
        tg = families.ring(10)
        clusters = random_contract(tg, 3, seed=7)
        check_contraction(tg, clusters, 3, 4)

    def test_random_deterministic_per_seed(self):
        tg = families.ring(10)
        assert random_contract(tg, 3, seed=5) == random_contract(tg, 3, seed=5)

    def test_bfs_blocks_are_local_on_chain(self):
        tg = families.linear(12)
        clusters = bfs_contract(tg, 3)
        # BFS order on a chain is the chain itself: contiguous blocks.
        assert sorted(map(sorted, clusters)) == [
            [0, 1, 2, 3],
            [4, 5, 6, 7],
            [8, 9, 10, 11],
        ]

    def test_bfs_handles_disconnected(self):
        tg = TaskGraph()
        tg.add_nodes(range(6))
        tg.add_comm_phase("c").add(0, 1)
        clusters = bfs_contract(tg, 2)
        check_contraction(tg, clusters, 2, 3)

    def test_infeasible_bounds_rejected(self):
        with pytest.raises(ValueError):
            random_contract(families.ring(8), 2, load_bound=3)
        with pytest.raises(ValueError):
            bfs_contract(families.ring(8), 0)
