"""Internal-behaviour tests for the migration machinery."""

import pytest

from repro.arch import networks
from repro.graph import families
from repro.mapper.mapping import Mapping
from repro.mapper.migration import (
    _migration_time,
    _segment_graph,
    evaluate_migration,
)
from repro.sim import CostModel


class TestSegmentGraph:
    def test_keeps_only_named_phases(self):
        tg = families.nbody(7)
        seg = _segment_graph(tg, {"ring"})
        assert list(seg.comm_phases) == ["ring"]
        assert len(seg.comm_phase("ring")) == 7

    def test_keeps_all_exec_phases(self):
        tg = families.nbody(7)
        seg = _segment_graph(tg, {"chordal"})
        assert set(seg.exec_phases) == {"compute1", "compute2"}

    def test_preserves_node_weights_and_volumes(self):
        tg = families.ring(4, volume=3.5)
        tg.add_node(99, 7.0)
        seg = _segment_graph(tg, {"ring"})
        assert seg.node_weight(99) == 7.0
        assert seg.comm_phase("ring").edges[0].volume == 3.5

    def test_empty_selection(self):
        tg = families.ring(4)
        seg = _segment_graph(tg, set())
        assert seg.comm_phases == {}
        assert seg.nodes == tg.nodes


class TestMigrationTime:
    def make(self, before_assign, after_assign):
        tg = families.ring(4)
        topo = networks.linear(4)
        before = Mapping(tg, topo, before_assign)
        after = Mapping(tg, topo, after_assign)
        return tg, topo, before, after

    def test_no_moves_costs_nothing(self):
        a = {i: i for i in range(4)}
        tg, topo, before, after = self.make(a, dict(a))
        assert _migration_time(tg, topo, before, after, 1.0, CostModel()) == 0.0

    def test_single_move_cost(self):
        a = {i: i for i in range(4)}
        b = dict(a)
        b[0] = 1  # one task moves one hop
        tg, topo, before, after = self.make(a, b)
        model = CostModel(hop_latency=1.0, byte_time=2.0)
        t = _migration_time(tg, topo, before, after, 5.0, model)
        # One task, one hop: transfer_time(5) = 1 + 10 = 11, plus the
        # serialisation term 5*2/3 links.
        assert t == pytest.approx(11.0 + 10.0 / 3.0)

    def test_cost_grows_with_distance(self):
        a = {i: 0 for i in range(4)}
        near = {**a, 0: 1}
        far = {**a, 0: 3}
        tg, topo, b1, a1 = self.make(a, near)
        _, _, b2, a2 = self.make(a, far)
        m = CostModel()
        assert _migration_time(tg, topo, b2, a2, 1.0, m) > _migration_time(
            tg, topo, b1, a1, 1.0, m
        )


class TestEvaluateMigrationEdges:
    def test_overlapping_segments_first_wins(self):
        # A phase named in two segments: steps attribute to the first.
        tg = families.nbody(7)
        topo = networks.hypercube(2)
        plan = evaluate_migration(
            tg,
            topo,
            [{"ring", "chordal", "compute1", "compute2"}, {"chordal"}],
        )
        # Everything lands in segment 0: no migrations happen.
        assert plan.migration_cost == 0.0

    def test_mappings_cover_all_tasks(self):
        tg = families.nbody(15)
        topo = networks.hypercube(3)
        plan = evaluate_migration(
            tg, topo, [{"ring", "compute1"}, {"chordal", "compute2"}]
        )
        for m in plan.mappings:
            assert set(m.assignment) == set(tg.nodes)
            assert m.provenance == "migratory"

    def test_worthwhile_flag_consistent(self):
        tg = families.nbody(7)
        topo = networks.hypercube(2)
        plan = evaluate_migration(
            tg, topo, [{"ring", "compute1"}, {"chordal", "compute2"}]
        )
        assert plan.worthwhile == (plan.migratory_time < plan.static_time)
