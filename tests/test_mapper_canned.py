"""Tests for the canned-mapping registry and its embeddings."""

import pytest

from repro.arch import networks
from repro.graph import families
from repro.mapper.canned import binomial_mesh_positions, canned_assignment, lookup, register
from repro.mapper.canned.binomial_mesh import binomial_to_mesh, mesh_dims
from repro.mapper.mapping import NotApplicableError


def avg_dilation(tg, topo, assignment):
    total = hops = 0
    for _, e in tg.all_edges():
        total += topo.distance(assignment[e.src], assignment[e.dst])
        hops += 1
    return total / hops


class TestRegistry:
    def test_hit(self):
        assert lookup("ring", "hypercube") is not None

    def test_miss_raises(self):
        tg = families.ring(8)
        with pytest.raises(NotApplicableError):
            canned_assignment(tg, networks.cube_connected_cycles(2))

    def test_unnamed_graph_raises(self):
        tg = families.ring(8)
        tg.family = None
        with pytest.raises(NotApplicableError):
            canned_assignment(tg, networks.hypercube(3))

    def test_register_custom(self):
        register("ring", "star", lambda tg, topo: {t: 0 for t in tg.nodes})
        try:
            a = canned_assignment(families.ring(3), networks.star(4))
            assert set(a.values()) == {0}
        finally:
            import repro.mapper.canned.registry as reg

            del reg._REGISTRY[("ring", "star")]

    def test_identity_same_family(self):
        tg = families.mesh(3, 4)
        a = canned_assignment(tg, networks.mesh(3, 4))
        assert a == {i: i for i in range(12)}

    def test_identity_size_mismatch(self):
        with pytest.raises(NotApplicableError):
            canned_assignment(families.ring(8), networks.ring(4))


class TestGrayEmbeddings:
    def test_ring_exact_size_dilation_one(self):
        tg = families.ring(8)
        topo = networks.hypercube(3)
        a = canned_assignment(tg, topo)
        assert avg_dilation(tg, topo, a) == 1.0

    def test_ring_contracted_balanced(self):
        tg = families.ring(16)
        topo = networks.hypercube(3)
        a = canned_assignment(tg, topo)
        sizes = {}
        for t, p in a.items():
            sizes[p] = sizes.get(p, 0) + 1
        assert set(sizes.values()) == {2}
        # Ring edges have dilation <= 1 after segment contraction.
        for _, e in tg.all_edges():
            assert topo.distance(a[e.src], a[e.dst]) <= 1

    def test_nbody_15_on_q3(self):
        tg = families.nbody(15)
        topo = networks.hypercube(3)
        a = canned_assignment(tg, topo)
        assert set(a.values()) <= set(range(8))
        for _, e in tg.all_edges():
            assert topo.distance(a[e.src], a[e.dst]) <= topo.diameter

    def test_mesh_exact_dilation_one(self):
        tg = families.mesh(4, 8)
        topo = networks.hypercube(5)
        a = canned_assignment(tg, topo)
        assert avg_dilation(tg, topo, a) == 1.0

    def test_torus_power_of_two_dilation_one(self):
        tg = families.torus(4, 4)
        topo = networks.hypercube(4)
        a = canned_assignment(tg, topo)
        assert avg_dilation(tg, topo, a) == 1.0

    def test_mesh_wrong_size_falls_through(self):
        tg = families.mesh(3, 5)
        with pytest.raises(NotApplicableError):
            canned_assignment(tg, networks.hypercube(4))

    def test_hypercube_identity(self):
        tg = families.hypercube(3)
        a = canned_assignment(tg, networks.hypercube(3))
        assert a == {i: i for i in range(8)}
        assert avg_dilation(tg, networks.hypercube(3), a) == 1.0

    def test_hypercube_contraction_balanced_dilation(self):
        tg = families.fft_butterfly(32)
        topo = networks.hypercube(3)
        a = canned_assignment(tg, topo)
        sizes = {}
        for t, p in a.items():
            sizes[p] = sizes.get(p, 0) + 1
        assert set(sizes.values()) == {4}
        for _, e in tg.all_edges():
            assert topo.distance(a[e.src], a[e.dst]) <= 1


class TestTreeEmbeddings:
    def test_binary_tree_dilation_at_most_two(self):
        tg = families.full_binary_tree(3)  # 15 nodes
        topo = networks.hypercube(4)
        a = canned_assignment(tg, topo)
        for _, e in tg.all_edges():
            assert topo.distance(a[e.src], a[e.dst]) <= 2

    def test_binary_tree_contraction_balanced(self):
        tg = families.full_binary_tree(4)  # 31 nodes
        topo = networks.hypercube(3)
        a = canned_assignment(tg, topo)
        sizes = {}
        for t, p in a.items():
            sizes[p] = sizes.get(p, 0) + 1
        assert max(sizes.values()) - min(sizes.values()) <= 1

    def test_binomial_into_hypercube_dilation_one(self):
        tg = families.binomial_tree(4)
        topo = networks.hypercube(4)
        a = canned_assignment(tg, topo)
        assert avg_dilation(tg, topo, a) == 1.0

    def test_binomial_contraction_dilation_at_most_one(self):
        tg = families.binomial_tree(6)
        topo = networks.hypercube(3)
        a = canned_assignment(tg, topo)
        for _, e in tg.all_edges():
            assert topo.distance(a[e.src], a[e.dst]) <= 1


class TestBinomialMesh:
    def test_positions_bijective(self):
        for k in range(9):
            pos = binomial_mesh_positions(k)
            h, w = mesh_dims(k)
            assert len(pos) == h * w
            assert len(set(pos.values())) == h * w

    def test_average_dilation_below_1_2(self):
        # The paper's headline claim (Section 4.1).
        for k in range(1, 11):
            tg = families.binomial_tree(k)
            h, w = mesh_dims(k)
            topo = networks.mesh(h, w)
            a = binomial_to_mesh(tg, topo)
            assert avg_dilation(tg, topo, a) <= 1.2, f"B_{k} exceeds 1.2"

    def test_small_orders_dilation_one(self):
        # B_0..B_4 are spanning subgraphs of their meshes.
        for k in range(1, 5):
            tg = families.binomial_tree(k)
            h, w = mesh_dims(k)
            topo = networks.mesh(h, w)
            assert avg_dilation(tg, topo, binomial_to_mesh(tg, topo)) == 1.0

    def test_transposed_mesh_accepted(self):
        tg = families.binomial_tree(3)  # host 4x2
        topo = networks.mesh(2, 4)
        a = binomial_to_mesh(tg, topo)
        assert len(set(a.values())) == 8

    def test_wrong_mesh_rejected(self):
        tg = families.binomial_tree(4)
        with pytest.raises(NotApplicableError):
            binomial_to_mesh(tg, networks.mesh(2, 8))

    def test_wrong_family_rejected(self):
        with pytest.raises(NotApplicableError):
            binomial_to_mesh(families.ring(16), networks.mesh(4, 4))
