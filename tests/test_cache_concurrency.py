"""Concurrent-writer safety of the artifact cache's disk tier.

The journal streams checkpoints from many supervisor threads -- and, for
the sweep's process executor, from many *processes* sharing one cache
directory -- so disk-tier writes race by design.  Safety rests on
:func:`repro.io.save_artifact` staging each pickle into a unique temp
file and publishing it with an atomic ``os.replace``: readers must only
ever see either a complete old envelope or a complete new one, never a
torn file.  These tests hammer one key from several processes and
threads at once and assert exactly that.
"""

import multiprocessing
import threading

from repro.pipeline import ArtifactCache

_N_WRITERS = 4
_N_ROUNDS = 30
_KEY = "contended-key"


def _payload(writer: int, round_: int) -> dict:
    # Big enough that a torn read could not parse as a valid pickle
    # envelope by accident.
    return {"writer": writer, "round": round_, "pad": list(range(2000))}


def _hammer(directory: str, writer: int) -> None:
    cache = ArtifactCache(directory)
    for round_ in range(_N_ROUNDS):
        cache.put(_KEY, _payload(writer, round_))


def _valid(value) -> bool:
    return (
        isinstance(value, dict)
        and 0 <= value["writer"] < _N_WRITERS
        and 0 <= value["round"] < _N_ROUNDS
        and value == _payload(value["writer"], value["round"])
    )


def test_concurrent_process_writers_never_tear(tmp_path):
    directory = str(tmp_path / "cache")
    ctx = multiprocessing.get_context()
    writers = [
        ctx.Process(target=_hammer, args=(directory, w))
        for w in range(_N_WRITERS)
    ]
    for p in writers:
        p.start()

    # A fresh reader per probe: no memory tier, every get is a disk read
    # racing the writers.
    seen = 0
    while any(p.is_alive() for p in writers):
        hit = ArtifactCache(directory).get(_KEY)
        if hit is not None:
            value, tier = hit
            assert tier == "disk"
            assert _valid(value), f"torn envelope surfaced: {value!r}"
            seen += 1
    for p in writers:
        p.join()
        assert p.exitcode == 0

    value, _ = ArtifactCache(directory).get(_KEY)
    assert _valid(value)
    assert seen > 0, "the reader never raced a writer; test proved nothing"


def test_concurrent_thread_writers_share_one_cache(tmp_path):
    # One ArtifactCache instance under writer threads (the journal's
    # actual shape): the memory tier's lock plus the disk tier's atomic
    # replace keep every read coherent.
    cache = ArtifactCache(str(tmp_path / "cache"))
    threads = [
        threading.Thread(target=_hammer, args=(cache.directory, w))
        for w in range(_N_WRITERS)
    ]
    for t in threads:
        t.start()
    while any(t.is_alive() for t in threads):
        hit = cache.get(_KEY)
        if hit is not None:
            assert _valid(hit[0])
    for t in threads:
        t.join()
    assert _valid(cache.get(_KEY)[0])
