"""Tests for the graph-family generators (repro.graph.families)."""

import pytest
from hypothesis import given, strategies as st

import networkx as nx

from repro.graph import families


class TestRing:
    def test_edges(self):
        tg = families.ring(5)
        assert tg.comm_phase("ring").pairs() == [(i, (i + 1) % 5) for i in range(5)]

    def test_family_tag(self):
        assert families.ring(5).family == ("ring", (5,))

    @given(st.integers(min_value=1, max_value=40))
    def test_every_node_degree_one_out(self, n):
        tg = families.ring(n)
        fn = tg.comm_function("ring")
        assert fn is not None and len(fn) == n

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            families.ring(0)


class TestNbody:
    def test_paper_15_body(self):
        tg = families.nbody(15)
        chord = dict(tg.comm_phase("chordal").pairs())
        # Fig 6: task 0 sends to task 8, task 1 to task 9, ...
        assert chord[0] == 8
        assert chord[1] == 9
        assert chord[14] == 7

    def test_even_n_rejected(self):
        with pytest.raises(ValueError):
            families.nbody(8)

    def test_phase_expression_structure(self):
        tg = families.nbody(7, sweeps=2)
        steps = tg.phase_expr.linearize()
        # (ring;compute1)^4 then chordal;compute2, twice.
        assert len(steps) == 2 * (2 * 4 + 2)
        tg.validate()

    def test_volumes(self):
        tg = families.nbody(7, volume=3.0)
        assert tg.comm_phase("ring").total_volume == 21.0


class TestMeshTorus:
    def test_mesh_interior_degree(self):
        tg = families.mesh(3, 3)
        g = tg.static_graph()
        assert g.degree(4) == 4  # centre cell
        assert g.degree(0) == 2  # corner

    def test_mesh_edge_count(self):
        tg = families.mesh(4, 5)
        g = tg.static_graph()
        assert g.number_of_edges() == 4 * 4 + 3 * 5

    def test_torus_uniform_degree(self):
        tg = families.torus(3, 4)
        g = tg.static_graph()
        assert all(d == 4 for _, d in g.degree())

    def test_torus_phases_are_bijections(self):
        tg = families.torus(3, 3)
        for name in tg.comm_phases:
            fn = tg.comm_function(name)
            assert fn is not None
            assert sorted(fn.values()) == list(range(9))

    def test_mesh_validates(self):
        families.mesh(2, 2).validate()


class TestHypercube:
    def test_counts(self):
        tg = families.hypercube(3)
        assert tg.n_tasks == 8
        assert len(tg.comm_phases) == 3
        assert tg.n_edges == 24

    def test_static_is_hypercube(self):
        tg = families.hypercube(3)
        assert nx.is_isomorphic(tg.static_graph(), nx.hypercube_graph(3))

    def test_dim_zero(self):
        tg = families.hypercube(0)
        assert tg.n_tasks == 1 and tg.n_edges == 0

    def test_phases_are_involutions(self):
        tg = families.hypercube(4)
        for name in tg.comm_phases:
            fn = tg.comm_function(name)
            assert all(fn[fn[i]] == i for i in fn)


class TestTrees:
    def test_full_binary_tree_sizes(self):
        for depth in range(5):
            tg = families.full_binary_tree(depth)
            assert tg.n_tasks == 2 ** (depth + 1) - 1
            g = tg.static_graph()
            assert nx.is_tree(g)

    def test_binomial_tree_is_tree(self):
        for k in range(7):
            tg = families.binomial_tree(k)
            assert tg.n_tasks == 2**k
            g = tg.static_graph()
            assert nx.is_tree(g)

    def test_binomial_root_degree(self):
        # The root of B_k has k children.
        tg = families.binomial_tree(5)
        divide = tg.phase_digraph("divide")
        assert divide.out_degree(0) == 5

    def test_binomial_edges_flip_one_bit(self):
        tg = families.binomial_tree(6)
        for u, v in tg.comm_phase("divide").pairs():
            assert bin(u ^ v).count("1") == 1

    def test_binomial_children_rule(self):
        # Children of x are x | 2^j for j below x's lowest set bit.
        tg = families.binomial_tree(4)
        divide = tg.phase_digraph("divide")
        assert sorted(divide.successors(4)) == [5, 6]
        assert sorted(divide.successors(8)) == [9, 10, 12]
        assert list(divide.successors(1)) == []


class TestOthers:
    def test_fft_butterfly_stage_count(self):
        tg = families.fft_butterfly(16)
        assert len(tg.comm_phases) == 4
        tg.validate()

    def test_fft_butterfly_requires_power_of_two(self):
        with pytest.raises(ValueError):
            families.fft_butterfly(12)

    def test_complete_edge_count(self):
        tg = families.complete(6)
        assert tg.n_edges == 30

    def test_star_structure(self):
        tg = families.star(5)
        assert tg.comm_phase("broadcast").pairs() == [(0, i) for i in range(1, 5)]
        assert tg.comm_phase("gather").pairs() == [(i, 0) for i in range(1, 5)]

    def test_linear_chain(self):
        tg = families.linear(4)
        g = tg.static_graph()
        assert nx.is_tree(g) and g.degree(0) == 1 and g.degree(1) == 2

    def test_all_families_validate(self):
        graphs = [
            families.ring(6),
            families.nbody(7),
            families.linear(5),
            families.mesh(3, 4),
            families.torus(3, 3),
            families.hypercube(3),
            families.full_binary_tree(3),
            families.binomial_tree(4),
            families.fft_butterfly(8),
            families.complete(4),
            families.star(5),
        ]
        for tg in graphs:
            tg.validate()
            assert tg.family is not None
