"""Tests for the graph-family generators (repro.graph.families)."""

import pytest
from hypothesis import given, strategies as st

import networkx as nx

from repro.graph import families


class TestRing:
    def test_edges(self):
        tg = families.ring(5)
        assert tg.comm_phase("ring").pairs() == [(i, (i + 1) % 5) for i in range(5)]

    def test_family_tag(self):
        assert families.ring(5).family == ("ring", (5,))

    @given(st.integers(min_value=1, max_value=40))
    def test_every_node_degree_one_out(self, n):
        tg = families.ring(n)
        fn = tg.comm_function("ring")
        assert fn is not None and len(fn) == n

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            families.ring(0)


class TestNbody:
    def test_paper_15_body(self):
        tg = families.nbody(15)
        chord = dict(tg.comm_phase("chordal").pairs())
        # Fig 6: task 0 sends to task 8, task 1 to task 9, ...
        assert chord[0] == 8
        assert chord[1] == 9
        assert chord[14] == 7

    def test_even_n_rejected(self):
        with pytest.raises(ValueError):
            families.nbody(8)

    def test_phase_expression_structure(self):
        tg = families.nbody(7, sweeps=2)
        steps = tg.phase_expr.linearize()
        # (ring;compute1)^4 then chordal;compute2, twice.
        assert len(steps) == 2 * (2 * 4 + 2)
        tg.validate()

    def test_volumes(self):
        tg = families.nbody(7, volume=3.0)
        assert tg.comm_phase("ring").total_volume == 21.0


class TestMeshTorus:
    def test_mesh_interior_degree(self):
        tg = families.mesh(3, 3)
        g = tg.static_graph()
        assert g.degree(4) == 4  # centre cell
        assert g.degree(0) == 2  # corner

    def test_mesh_edge_count(self):
        tg = families.mesh(4, 5)
        g = tg.static_graph()
        assert g.number_of_edges() == 4 * 4 + 3 * 5

    def test_torus_uniform_degree(self):
        tg = families.torus(3, 4)
        g = tg.static_graph()
        assert all(d == 4 for _, d in g.degree())

    def test_torus_phases_are_bijections(self):
        tg = families.torus(3, 3)
        for name in tg.comm_phases:
            fn = tg.comm_function(name)
            assert fn is not None
            assert sorted(fn.values()) == list(range(9))

    def test_mesh_validates(self):
        families.mesh(2, 2).validate()


class TestHypercube:
    def test_counts(self):
        tg = families.hypercube(3)
        assert tg.n_tasks == 8
        assert len(tg.comm_phases) == 3
        assert tg.n_edges == 24

    def test_static_is_hypercube(self):
        tg = families.hypercube(3)
        assert nx.is_isomorphic(tg.static_graph(), nx.hypercube_graph(3))

    def test_dim_zero(self):
        tg = families.hypercube(0)
        assert tg.n_tasks == 1 and tg.n_edges == 0

    def test_phases_are_involutions(self):
        tg = families.hypercube(4)
        for name in tg.comm_phases:
            fn = tg.comm_function(name)
            assert all(fn[fn[i]] == i for i in fn)


class TestTrees:
    def test_full_binary_tree_sizes(self):
        for depth in range(5):
            tg = families.full_binary_tree(depth)
            assert tg.n_tasks == 2 ** (depth + 1) - 1
            g = tg.static_graph()
            assert nx.is_tree(g)

    def test_binomial_tree_is_tree(self):
        for k in range(7):
            tg = families.binomial_tree(k)
            assert tg.n_tasks == 2**k
            g = tg.static_graph()
            assert nx.is_tree(g)

    def test_binomial_root_degree(self):
        # The root of B_k has k children.
        tg = families.binomial_tree(5)
        divide = tg.phase_digraph("divide")
        assert divide.out_degree(0) == 5

    def test_binomial_edges_flip_one_bit(self):
        tg = families.binomial_tree(6)
        for u, v in tg.comm_phase("divide").pairs():
            assert bin(u ^ v).count("1") == 1

    def test_binomial_children_rule(self):
        # Children of x are x | 2^j for j below x's lowest set bit.
        tg = families.binomial_tree(4)
        divide = tg.phase_digraph("divide")
        assert sorted(divide.successors(4)) == [5, 6]
        assert sorted(divide.successors(8)) == [9, 10, 12]
        assert list(divide.successors(1)) == []


class TestOthers:
    def test_fft_butterfly_stage_count(self):
        tg = families.fft_butterfly(16)
        assert len(tg.comm_phases) == 4
        tg.validate()

    def test_fft_butterfly_requires_power_of_two(self):
        with pytest.raises(ValueError):
            families.fft_butterfly(12)

    def test_complete_edge_count(self):
        tg = families.complete(6)
        assert tg.n_edges == 30

    def test_star_structure(self):
        tg = families.star(5)
        assert tg.comm_phase("broadcast").pairs() == [(0, i) for i in range(1, 5)]
        assert tg.comm_phase("gather").pairs() == [(i, 0) for i in range(1, 5)]

    def test_linear_chain(self):
        tg = families.linear(4)
        g = tg.static_graph()
        assert nx.is_tree(g) and g.degree(0) == 1 and g.degree(1) == 2

    def test_all_families_validate(self):
        graphs = [
            families.ring(6),
            families.nbody(7),
            families.linear(5),
            families.mesh(3, 4),
            families.torus(3, 3),
            families.hypercube(3),
            families.full_binary_tree(3),
            families.binomial_tree(4),
            families.fft_butterfly(8),
            families.complete(4),
            families.star(5),
        ]
        for tg in graphs:
            tg.validate()
            assert tg.family is not None


class TestRandomGeometric:
    def test_deterministic_for_seed(self):
        a = families.random_geometric(120, seed=5)
        b = families.random_geometric(120, seed=5)
        assert a.family == b.family == ("random_geometric", (120, a.family[1][1], 5))
        assert a.comm_phase("exchange").pairs() == b.comm_phase("exchange").pairs()

    def test_seed_changes_edges(self):
        a = families.random_geometric(120, seed=1)
        b = families.random_geometric(120, seed=2)
        assert a.comm_phase("exchange").pairs() != b.comm_phase("exchange").pairs()

    def test_structure_and_validation(self):
        tg = families.random_geometric(200, seed=0)
        tg.validate()
        assert tg.n_tasks == 200
        assert set(tg.comm_phases) == {"exchange"}
        # default radius targets expected degree ~8; allow wide slack
        mean_deg = 2 * tg.n_edges / tg.n_tasks
        assert 3.0 < mean_deg < 16.0

    def test_explicit_radius_and_volume(self):
        tg = families.random_geometric(50, 0.3, seed=4, volume=2.5)
        assert tg.family == ("random_geometric", (50, 0.3, 4))
        assert all(e.volume == 2.5 for e in tg.comm_phase("exchange").edges)

    def test_edges_sorted_and_unique(self):
        tg = families.random_geometric(150, seed=9)
        pairs = tg.comm_phase("exchange").pairs()
        assert all(u < v for u, v in pairs)
        assert pairs == sorted(pairs)
        assert len(set(pairs)) == len(pairs)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            families.random_geometric(0)


class TestKron:
    def test_deterministic_for_seed(self):
        a = families.kron(7, seed=3)
        b = families.kron(7, seed=3)
        assert a.comm_phase("exchange").pairs() == b.comm_phase("exchange").pairs()
        assert a.family == ("kron", (7, 16, 3))

    def test_shape(self):
        tg = families.kron(8, edge_factor=8, seed=0)
        tg.validate()
        assert tg.n_tasks == 256
        # duplicates fold, self-loops drop: fewer pairs than raw samples
        assert 0 < tg.n_edges <= 8 * 256

    def test_duplicate_samples_fold_into_volume(self):
        tg = families.kron(5, edge_factor=32, seed=1, volume=1.0)
        vols = [e.volume for e in tg.comm_phase("exchange").edges]
        assert any(v > 1.0 for v in vols)  # R-MAT repeats hub edges
        assert all(float(v).is_integer() for v in vols)

    def test_no_self_loops(self):
        tg = families.kron(6, seed=2)
        assert all(u != v for u, v in tg.comm_phase("exchange").pairs())

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            families.kron(-1)
        with pytest.raises(ValueError):
            families.kron(4, edge_factor=0)
