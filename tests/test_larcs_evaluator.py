"""Tests for LaRCS elaboration (repro.larcs.evaluator / compiler)."""

import pytest
from hypothesis import given, strategies as st

from repro.larcs.compiler import compile_larcs
from repro.larcs.errors import LarcsSemanticError
from repro.larcs.evaluator import eval_expr
from repro.larcs.parser import parse_larcs


def ev(text, **env):
    prog = parse_larcs(
        f"algorithm a(n);\nconstant x = {text};\n"
        "nodetype t[0..n-1];\ncomphase p t(i) -> t(i);"
    )
    return eval_expr(prog.constants[0].value, env)


class TestEvalExpr:
    def test_arithmetic(self):
        assert ev("2 + 3 * 4") == 14
        assert ev("(2 + 3) * 4") == 20
        assert ev("7 / 2") == 3
        assert ev("7 div 2") == 3
        assert ev("7 mod 3") == 1
        assert ev("2 ** 10") == 1024
        assert ev("-5 + 2") == -3

    def test_bitwise(self):
        assert ev("5 xor 3") == 6
        assert ev("1 shl 4") == 16
        assert ev("32 shr 2") == 8

    def test_comparisons(self):
        assert ev("3 < 4") is True
        assert ev("3 >= 4") is False
        assert ev("3 == 3") is True
        assert ev("3 != 3") is False

    def test_boolean(self):
        assert ev("true and false") is False
        assert ev("true or false") is True
        assert ev("not true") is False

    def test_short_circuit(self):
        # 'false and (1/0 == 0)' must not evaluate the division.
        assert ev("false and (1 / 0 == 0)") is False
        assert ev("true or (1 / 0 == 0)") is True

    def test_builtins(self):
        assert ev("min(3, 7)") == 3
        assert ev("max(3, 7, 5)") == 7
        assert ev("abs(-4)") == 4
        assert ev("log2(8)") == 3
        assert ev("log2(9)") == 3  # floor

    def test_env_names(self):
        assert ev("n * 2", n=21) == 42

    def test_unbound_name(self):
        with pytest.raises(LarcsSemanticError):
            ev("nosuch")

    def test_division_by_zero(self):
        with pytest.raises(LarcsSemanticError):
            ev("1 / 0")
        with pytest.raises(LarcsSemanticError):
            ev("1 mod 0")

    def test_type_errors(self):
        with pytest.raises(LarcsSemanticError):
            ev("true + 1")
        with pytest.raises(LarcsSemanticError):
            ev("not 3")
        with pytest.raises(LarcsSemanticError):
            ev("1 and true")

    def test_negative_exponent(self):
        with pytest.raises(LarcsSemanticError):
            ev("2 ** -1")

    @given(st.integers(-100, 100), st.integers(-100, 100))
    def test_add_matches_python(self, a, b):
        assert ev(f"n + m", n=a, m=b) == a + b

    @given(st.integers(-100, 100), st.integers(1, 50))
    def test_floor_division_matches_python(self, a, b):
        assert ev("n / m", n=a, m=b) == a // b


class TestBindings:
    SRC = """
    algorithm a(n, s = n / 2);
    import msize = 1;
    nodetype t[0 .. n-1];
    comphase p t(i) -> t((i + s) mod n) volume msize;
    """

    def test_required_param(self):
        with pytest.raises(LarcsSemanticError):
            compile_larcs(self.SRC)

    def test_default_sees_earlier_params(self):
        res = compile_larcs(self.SRC, n=10)
        fn = res.task_graph.comm_function("p")
        assert fn[0] == 5

    def test_override_default(self):
        res = compile_larcs(self.SRC, n=10, s=1)
        fn = res.task_graph.comm_function("p")
        assert fn[0] == 1

    def test_unknown_binding_rejected(self):
        with pytest.raises(LarcsSemanticError):
            compile_larcs(self.SRC, n=10, bogus=3)

    def test_non_int_binding_rejected(self):
        with pytest.raises(LarcsSemanticError):
            compile_larcs(self.SRC, n=True)

    def test_import_default(self):
        res = compile_larcs(self.SRC, n=4, msize=7)
        assert res.task_graph.comm_phase("p").edges[0].volume == 7.0


class TestElaboration:
    def test_nodes_single_dim_are_ints(self):
        res = compile_larcs(
            "algorithm a(n);\nnodetype t[0..n-1];\ncomphase p t(i) -> t(i);", n=5
        )
        assert res.task_graph.nodes == [0, 1, 2, 3, 4]

    def test_nodes_multidim_are_tuples(self):
        res = compile_larcs(
            "algorithm a(n);\nnodetype c[0..1, 0..n-1];\ncomphase p c(i,j) -> c(i,j);",
            n=2,
        )
        assert set(res.task_graph.nodes) == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_two_nodetypes_prefixed_labels(self):
        res = compile_larcs(
            """
            algorithm a(n);
            nodetype producer[0..n-1];
            nodetype consumer[0..n-1];
            comphase feed producer(i) -> consumer(i);
            """,
            n=2,
        )
        tg = res.task_graph
        assert ("producer", 0) in tg.nodes and ("consumer", 1) in tg.nodes
        assert tg.comm_phase("feed").pairs() == [
            (("producer", 0), ("consumer", 0)),
            (("producer", 1), ("consumer", 1)),
        ]

    def test_where_guard_filters(self):
        res = compile_larcs(
            "algorithm a(n);\nnodetype t[0..n-1];\n"
            "comphase p t(i) -> t(i+1) where i < n-1;",
            n=4,
        )
        assert res.task_graph.comm_phase("p").pairs() == [(0, 1), (1, 2), (2, 3)]
        assert res.warnings == []

    def test_out_of_space_edges_dropped_with_warning(self):
        res = compile_larcs(
            "algorithm a(n);\nnodetype t[0..n-1];\ncomphase p t(i) -> t(i+1);", n=4
        )
        assert res.task_graph.comm_phase("p").pairs() == [(0, 1), (1, 2), (2, 3)]
        assert len(res.warnings) == 1

    def test_forall_one_to_many(self):
        res = compile_larcs(
            "algorithm a(n);\nnodetype t[0..n-1];\n"
            "comphase bcast forall j in 1..n-1 : t(i) -> t((i+j) mod n) where i == 0;",
            n=4,
        )
        assert res.task_graph.comm_phase("bcast").pairs() == [(0, 1), (0, 2), (0, 3)]

    def test_indexed_comphase_names(self):
        res = compile_larcs(
            "algorithm a(m);\nconstant n = 2**m;\nnodetype t[0..n-1];\n"
            "comphase fly[s : 0..m-1] t(i) -> t(i xor (1 shl s));",
            m=2,
        )
        assert list(res.task_graph.comm_phases) == ["fly[0]", "fly[1]"]

    def test_execphase_per_node_costs(self):
        res = compile_larcs(
            "algorithm a(n);\nnodetype t[0..n-1];\ncomphase p t(i) -> t(i);\n"
            "execphase w for t(i) cost i * 10;",
            n=3,
        )
        w = res.task_graph.exec_phase("w")
        assert w.cost_of(2) == 20.0

    def test_phase_expr_elaborated(self):
        res = compile_larcs(
            "algorithm a(n);\nnodetype t[0..n-1];\ncomphase p t(i) -> t((i+1) mod n);\n"
            "execphase w;\nphases (p; w)^(n-1);",
            n=4,
        )
        assert len(res.task_graph.phase_expr.linearize()) == 6

    def test_indexed_seq_elaboration(self):
        res = compile_larcs(
            "algorithm a(m);\nconstant n = 2**m;\nnodetype t[0..n-1];\n"
            "comphase fly[s : 0..m-1] t(i) -> t(i xor (1 shl s));\n"
            "phases seq s in 0..m-1 : fly[s];",
            m=3,
        )
        steps = res.task_graph.phase_expr.linearize()
        assert [sorted(s)[0] for s in steps] == ["fly[0]", "fly[1]", "fly[2]"]

    def test_pattern_must_be_variables(self):
        with pytest.raises(LarcsSemanticError):
            compile_larcs(
                "algorithm a(n);\nnodetype t[0..n-1];\ncomphase p t(0) -> t(1);", n=4
            )

    def test_pattern_shadowing_rejected(self):
        with pytest.raises(LarcsSemanticError):
            compile_larcs(
                "algorithm a(n);\nnodetype t[0..n-1];\ncomphase p t(n) -> t(n);", n=4
            )

    def test_empty_range_rejected(self):
        with pytest.raises(LarcsSemanticError):
            compile_larcs(
                "algorithm a(n);\nnodetype t[0..n-1];\ncomphase p t(i) -> t(i);", n=0
            )

    def test_unknown_nodetype_in_rule(self):
        with pytest.raises(LarcsSemanticError):
            compile_larcs(
                "algorithm a(n);\nnodetype t[0..n-1];\ncomphase p u(i) -> t(i);", n=4
            )

    def test_arity_mismatch(self):
        with pytest.raises(LarcsSemanticError):
            compile_larcs(
                "algorithm a(n);\nnodetype t[0..n-1];\ncomphase p t(i, j) -> t(i);",
                n=4,
            )

    def test_negative_volume_rejected(self):
        with pytest.raises(LarcsSemanticError):
            compile_larcs(
                "algorithm a(n);\nnodetype t[0..n-1];\ncomphase p t(i) -> t(i) volume -1;",
                n=4,
            )

    def test_negative_repetition_rejected(self):
        with pytest.raises(LarcsSemanticError):
            compile_larcs(
                "algorithm a(n);\nnodetype t[0..n-1];\ncomphase p t(i) -> t(i);\n"
                "phases p^(0-2);",
                n=4,
            )

    def test_nodesymmetric_hint_propagates(self):
        res = compile_larcs(
            "algorithm a(n);\nnodetype t[0..n-1] nodesymmetric;\n"
            "comphase p t(i) -> t((i+1) mod n);",
            n=4,
        )
        assert res.task_graph.node_symmetric_hint
