"""Tests for the network constructors (repro.arch.networks, cayley_networks)."""

import math

import networkx as nx
import pytest

from repro.arch import networks
from repro.arch.cayley_networks import pancake, transposition_star
from repro.groups import Permutation, PermutationGroup
from repro.arch.cayley_networks import cayley_topology


class TestBasicFamilies:
    def test_ring_sizes(self):
        for n in (1, 2, 3, 8):
            t = networks.ring(n)
            assert t.n_processors == n
            assert t.n_links == (0 if n == 1 else (1 if n == 2 else n))

    def test_linear(self):
        t = networks.linear(5)
        assert t.n_links == 4
        assert t.diameter == 4

    def test_mesh_structure(self):
        t = networks.mesh(3, 4)
        assert t.n_processors == 12
        assert t.n_links == 3 * 3 + 2 * 4
        assert nx.is_isomorphic(t.graph, nx.grid_2d_graph(3, 4))

    def test_torus_degree(self):
        t = networks.torus(3, 3)
        assert all(t.degree(p) == 4 for p in t.processors)

    def test_torus_degenerate_rows(self):
        # A 1 x n torus degenerates to a ring without duplicate links.
        t = networks.torus(1, 5)
        assert t.n_links == 5

    def test_hypercube_matches_networkx(self):
        t = networks.hypercube(4)
        assert nx.is_isomorphic(t.graph, nx.hypercube_graph(4))

    def test_complete(self):
        t = networks.complete(6)
        assert t.n_links == 15

    def test_star(self):
        t = networks.star(7)
        assert t.degree(0) == 6
        assert t.diameter == 2

    def test_tree(self):
        t = networks.full_binary_tree(3)
        assert t.n_processors == 15
        assert nx.is_tree(t.graph)

    def test_family_tags(self):
        assert networks.mesh(2, 2).family == ("mesh", (2, 2))
        assert networks.hypercube(3).family == ("hypercube", (3,))


class TestCCCButterfly:
    def test_ccc_size_and_degree(self):
        t = networks.cube_connected_cycles(3)
        assert t.n_processors == 3 * 8
        assert all(t.degree(p) == 3 for p in t.processors)

    def test_ccc_dim_one(self):
        t = networks.cube_connected_cycles(1)
        assert t.n_processors == 2 and t.n_links == 1

    def test_butterfly_size(self):
        t = networks.butterfly(3)
        assert t.n_processors == 4 * 8
        # Interior levels have degree 4, boundary levels degree 2.
        degs = sorted(t.degree(p) for p in t.processors)
        assert degs[0] == 2 and degs[-1] == 4

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            networks.cube_connected_cycles(0)
        with pytest.raises(ValueError):
            networks.butterfly(0)
        with pytest.raises(ValueError):
            networks.hypercube(-1)


class TestDeBruijnShuffleExchange:
    def test_de_bruijn_size_and_diameter(self):
        for dim in (2, 3, 4):
            t = networks.de_bruijn(dim)
            assert t.n_processors == 1 << dim
            # Any label reachable in dim shift steps.
            assert t.diameter <= dim

    def test_de_bruijn_degree_bounded(self):
        t = networks.de_bruijn(4)
        assert all(t.degree(p) <= 4 for p in t.processors)

    def test_shuffle_exchange_structure(self):
        t = networks.shuffle_exchange(3)
        assert t.n_processors == 8
        # Exchange edges pair even/odd labels.
        assert t.has_link(0, 1) and t.has_link(6, 7)
        # Shuffle edge: 3 = 011 -> 110 = 6.
        assert t.has_link(3, 6)

    def test_shuffle_exchange_degree_bounded(self):
        t = networks.shuffle_exchange(4)
        assert all(t.degree(p) <= 3 for p in t.processors)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            networks.de_bruijn(0)
        with pytest.raises(ValueError):
            networks.shuffle_exchange(0)

    def test_usable_as_mapping_targets(self):
        from repro.graph import families
        from repro.mapper import map_computation

        for topo in (networks.de_bruijn(3), networks.shuffle_exchange(3)):
            m = map_computation(families.ring(16), topo, strategy="mwm")
            m.validate(require_routes=True)


class TestCayleyNetworks:
    def test_star_graph_s3_is_ring6(self):
        # ST_3 is a 6-cycle.
        t = transposition_star(3)
        assert t.n_processors == 6
        assert nx.is_isomorphic(t.graph, nx.cycle_graph(6))

    def test_star_graph_degree(self):
        t = transposition_star(4)
        assert t.n_processors == 24
        assert all(t.degree(p) == 3 for p in t.processors)

    def test_star_graph_diameter(self):
        # Known: diameter of ST_n is floor(3(n-1)/2).
        assert transposition_star(4).diameter == math.floor(3 * 3 / 2)

    def test_pancake_degree(self):
        t = pancake(4)
        assert t.n_processors == 24
        assert all(t.degree(p) == 3 for p in t.processors)

    def test_pancake_p3_is_ring6(self):
        assert nx.is_isomorphic(pancake(3).graph, nx.cycle_graph(6))

    def test_generic_cayley_requires_inverse_closure(self):
        g = PermutationGroup.cyclic(5)
        gen = Permutation([(i + 1) % 5 for i in range(5)])
        with pytest.raises(ValueError):
            cayley_topology(g, [gen])  # inverse missing
        t = cayley_topology(g, [gen, gen.inverse()], name="c5")
        assert nx.is_isomorphic(t.graph, nx.cycle_graph(5))

    def test_identity_generator_rejected(self):
        g = PermutationGroup.cyclic(4)
        with pytest.raises(ValueError):
            cayley_topology(g, [g.identity()])

    def test_too_small(self):
        with pytest.raises(ValueError):
            transposition_star(1)
        with pytest.raises(ValueError):
            pancake(1)
