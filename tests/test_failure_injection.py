"""Failure-injection tests: corrupted artefacts must be caught, not trusted.

Every consumer of a mapping (METRICS, the simulator, the session, the
serialiser) validates before it computes; these tests inject the
corruptions a buggy producer or a damaged file could introduce and check
each layer refuses loudly.
"""

import json

import pytest

from repro.arch import networks
from repro.graph import families
from repro.io import load_mapping, mapping_from_dict, mapping_to_dict, save_mapping
from repro.mapper import map_computation
from repro.metrics import MappingSession
from repro.sim import simulate
from repro.util.validation import ValidationError


def good_mapping():
    return map_computation(families.nbody(15), networks.hypercube(3))


class TestCorruptedMappings:
    def test_dangling_task_assignment(self):
        m = good_mapping()
        m.assignment[999] = 0  # task that does not exist in the graph
        # A dangling assignment entry would silently corrupt cluster and
        # load-balance accounting; validate() must reject it loudly.
        with pytest.raises(ValidationError, match="not in the graph"):
            m.validate()

    def test_route_to_wrong_processor(self):
        m = good_mapping()
        (phase, idx), route = next(iter(m.routes.items()))
        m.routes[(phase, idx)] = route[:-1] + [route[-1] ^ 7 ^ route[-1]]  # corrupt
        m.routes[(phase, idx)] = [route[0]]  # truncated route
        if len(route) > 1:
            with pytest.raises(ValueError):
                m.validate()

    def test_teleporting_route(self):
        m = good_mapping()
        key = next(k for k, r in m.routes.items() if len(r) > 2)
        route = m.routes[key]
        m.routes[key] = [route[0], route[-1]] if not m.topology.has_link(
            route[0], route[-1]
        ) else [route[0], route[1], route[1]]
        # Either a non-path or a stuttering walk; the stutter (p -> p) is
        # not a link either way.
        with pytest.raises(ValueError):
            m.validate()

    def test_simulator_rejects_missing_routes(self):
        m = good_mapping()
        del m.routes[next(iter(m.routes))]
        with pytest.raises(ValueError, match="missing route"):
            simulate(m)

    def test_session_rejects_invalid_start(self):
        m = good_mapping()
        del m.routes[next(iter(m.routes))]
        with pytest.raises(ValueError):
            MappingSession(m)


class TestCorruptedFiles:
    def test_truncated_json(self, tmp_path):
        m = good_mapping()
        path = tmp_path / "m.json"
        save_mapping(m, str(path))
        path.write_text(path.read_text()[:100])
        with pytest.raises(json.JSONDecodeError):
            load_mapping(str(path))

    def test_edge_index_out_of_range(self):
        data = mapping_to_dict(good_mapping())
        data["routes"][0]["edge"] = 10_000
        with pytest.raises(ValueError, match="matches no edge"):
            mapping_from_dict(data)

    def test_assignment_to_missing_processor(self):
        data = mapping_to_dict(good_mapping())
        data["assignment"][0][1] = 99
        with pytest.raises(ValueError, match="unknown processor"):
            mapping_from_dict(data)

    def test_negative_volume_rejected_on_load(self):
        data = mapping_to_dict(good_mapping())
        data["task_graph"]["comm_phases"][0]["edges"][0][2] = -5.0
        with pytest.raises(ValueError, match="negative volume"):
            mapping_from_dict(data)

    def test_phase_expr_referencing_ghost_phase(self):
        data = mapping_to_dict(good_mapping())
        data["task_graph"]["phase_expr"] = "ring; ghost"
        with pytest.raises(ValueError, match="undeclared phase"):
            mapping_from_dict(data)

    def test_disconnected_topology_rejected(self):
        data = mapping_to_dict(good_mapping())
        # Drop enough links to disconnect the cube.
        links = data["topology"]["links"]
        data["topology"]["links"] = [l for l in links if 0 not in l]
        with pytest.raises(ValueError, match="not connected"):
            mapping_from_dict(data)
