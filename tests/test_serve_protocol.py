"""The ``/v1/map`` wire protocol: parsing, shaping, and error mapping."""

import json

import pytest

from repro import __version__, io
from repro.errors import RetriesExhausted, TaskTimeout, WorkerCrash
from repro.larcs import stdlib
from repro.serve import protocol
from repro.serve.protocol import (
    MapRequest,
    ProtocolError,
    error_response,
    map_response,
    parse_map_request,
    render_result,
    request_key,
)


def _body(**overrides) -> bytes:
    body = {"program": "dnc", "bind": {"m": 3}, "topology": "mesh:2x2"}
    body.update(overrides)
    return json.dumps(body).encode()


class TestParseMapRequest:
    def test_minimal_program_request(self):
        request = parse_map_request(_body())
        assert isinstance(request, MapRequest)
        assert request.tg.n_tasks == 8
        assert request.topology.n_processors == 4
        assert request.faults is None
        assert request.deadline_s is None
        assert request.use_cache is True
        # the worker-side config never double-caches
        assert request.config.cache is False

    def test_config_cache_flag_becomes_use_cache(self):
        request = parse_map_request(_body(config={"cache": False}))
        assert request.use_cache is False
        assert request.config.cache is False

    def test_inline_task_graph(self):
        tg = stdlib.load("dnc", m=3)
        raw = json.dumps({
            "task_graph": io.taskgraph_to_dict(tg),
            "topology": "mesh:2x2",
        }).encode()
        request = parse_map_request(raw)
        assert request.tg.n_tasks == tg.n_tasks

    def test_program_and_task_graph_together_rejected(self):
        with pytest.raises(ProtocolError, match="exactly one"):
            parse_map_request(_body(task_graph={"tasks": []}))

    def test_neither_program_nor_graph_rejected(self):
        with pytest.raises(ProtocolError, match="exactly one"):
            parse_map_request(json.dumps({"topology": "ring:4"}).encode())

    def test_unknown_program_rejected(self):
        with pytest.raises(ProtocolError, match="unknown stdlib program"):
            parse_map_request(_body(program="nonesuch"))

    def test_path_traversal_is_not_a_program(self):
        """The server must never read files on behalf of a request."""
        with pytest.raises(ProtocolError, match="unknown stdlib program"):
            parse_map_request(_body(program="../../etc/passwd"))

    def test_unknown_keys_rejected(self):
        with pytest.raises(ProtocolError, match="unknown request keys"):
            parse_map_request(_body(shellcode="x"))

    def test_invalid_json_rejected(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            parse_map_request(b"{nope")

    def test_non_object_body_rejected(self):
        with pytest.raises(ProtocolError, match="must be a JSON object"):
            parse_map_request(b"[1, 2]")

    def test_non_integer_binding_rejected(self):
        with pytest.raises(ProtocolError, match="must be an integer"):
            parse_map_request(_body(bind={"m": "three"}))

    def test_boolean_binding_rejected(self):
        with pytest.raises(ProtocolError, match="must be an integer"):
            parse_map_request(_body(bind={"m": True}))

    def test_missing_topology_rejected(self):
        raw = json.dumps({"program": "dnc", "bind": {"m": 3}}).encode()
        with pytest.raises(
            ProtocolError, match="exactly one of 'topology' or 'machine'"
        ):
            parse_map_request(raw)

    def test_topology_and_machine_together_rejected(self):
        with pytest.raises(
            ProtocolError, match="exactly one of 'topology' or 'machine'"
        ):
            parse_map_request(
                _body(topology="mesh:2x2", machine="fat_tree:2x2")
            )

    def test_bad_topology_spec_rejected(self):
        with pytest.raises(ProtocolError, match="unknown topology"):
            parse_map_request(_body(topology="dragonfly:8"))

    def test_unknown_config_key_rejected(self):
        with pytest.raises(ProtocolError, match="bad 'config'"):
            parse_map_request(_body(config={"warp_speed": 9}))

    def test_bad_deadline_rejected(self):
        for bad in (0, -1, "soon", True):
            with pytest.raises(ProtocolError, match="deadline_s"):
                parse_map_request(_body(deadline_s=bad))

    def test_valid_deadline_accepted(self):
        request = parse_map_request(_body(deadline_s=2))
        assert request.deadline_s == 2.0

    def test_faults_parsed(self):
        request = parse_map_request(_body(
            topology="mesh:2x2",
            faults={"format": "oregami-faultset-v1",
                    "failed_procs": [0], "failed_links": [],
                    "degraded_links": []},
        ))
        assert request.faults is not None

    def test_bad_faults_rejected(self):
        with pytest.raises(ProtocolError, match="bad 'faults'"):
            parse_map_request(_body(faults={"failed_procs": [0]}))

    def test_oversized_body_is_413(self, monkeypatch):
        monkeypatch.setattr(protocol, "MAX_BODY_BYTES", 64)
        with pytest.raises(ProtocolError) as info:
            parse_map_request(b"x" * 65)
        assert info.value.status == 413
        assert info.value.kind == "PayloadTooLarge"


class TestRequestKey:
    def test_whitespace_and_order_insensitive(self):
        a = {"program": "dnc", "bind": {"m": 3}, "topology": "ring:4"}
        b = {"topology": "ring:4", "bind": {"m": 3}, "program": "dnc"}
        assert request_key(a) == request_key(b)

    def test_different_bodies_differ(self):
        a = {"program": "dnc", "bind": {"m": 3}, "topology": "ring:4"}
        b = {"program": "dnc", "bind": {"m": 4}, "topology": "ring:4"}
        assert request_key(a) != request_key(b)


class TestMapResponse:
    def _result(self):
        from repro.cli import parse_topology
        from repro.pipeline import RunConfig, run_pipeline

        tg = stdlib.load("dnc", m=3)
        return run_pipeline(tg, parse_topology("mesh:2x2"),
                            RunConfig(cache=False))

    def test_result_member_has_no_request_provenance(self):
        result = self._result()
        rendered = render_result(result, fingerprints={"pipeline": "abc"})
        doc = json.loads(rendered)
        assert "cache" not in doc
        assert doc["fingerprints"] == {"pipeline": "abc"}
        assert "mapping" in doc

    def test_envelope_is_request_scoped(self):
        result = self._result()
        rendered = render_result(result, fingerprints={})
        body = json.loads(map_response(
            rendered, key="k1", tier="memory", elapsed_s=0.01,
        ))
        assert body["format"] == protocol.MAP_FORMAT
        assert body["serving"]["cache"] == {
            "key": "k1", "tier": "memory",
            "hit": True, "deduplicated": False,
        }
        assert body["serving"]["version"] == __version__

    def test_rendering_is_deterministic_across_tiers(self):
        result = self._result()
        rendered = render_result(result, fingerprints={"pipeline": "abc"})
        cold = json.loads(map_response(rendered, key="k", tier="computed",
                                       elapsed_s=1.0))
        warm = json.loads(map_response(rendered, key="k", tier="disk",
                                       elapsed_s=0.001))
        assert cold["result"] == warm["result"]
        assert cold["serving"]["cache"]["hit"] is False
        assert warm["serving"]["cache"]["hit"] is True


class TestErrorResponse:
    def test_protocol_error_is_400(self):
        status, body = error_response(ProtocolError("bad"))
        assert status == 400
        assert body["error"]["type"] == "BadRequest"
        assert body["error"]["exit_code"] == 2

    def test_payload_too_large_is_413(self):
        status, body = error_response(
            ProtocolError("big", status=413, kind="PayloadTooLarge")
        )
        assert status == 413
        assert body["error"]["type"] == "PayloadTooLarge"

    def test_task_timeout_is_504_exit_3(self):
        status, body = error_response(TaskTimeout("too slow"))
        assert status == 504
        assert body["error"]["exit_code"] == 3

    def test_retries_exhausted_by_timeout_is_504(self):
        status, _ = error_response(
            RetriesExhausted("gone", last_outcome="timeout")
        )
        assert status == 504

    def test_worker_crash_is_500_with_attempts(self):
        from repro.errors import Attempt

        exc = WorkerCrash("boom", attempts=[
            Attempt(number=1, outcome="crash", detail="exit 9", backoff_s=0.1)
        ])
        status, body = error_response(exc)
        assert status == 500
        assert body["error"]["attempts"] == [
            {"number": 1, "outcome": "crash", "detail": "exit 9",
             "backoff_s": 0.1}
        ]

    def test_value_error_is_400(self):
        status, _ = error_response(ValueError("nope"))
        assert status == 400

    def test_unexpected_error_is_500(self):
        status, body = error_response(RuntimeError("???"))
        assert status == 500
        assert body["error"]["type"] == "RuntimeError"


class TestParseSessionRequest:
    def _body(self, **overrides) -> bytes:
        body = {"program": "dnc", "bind": {"m": 3}, "topology": "mesh:2x2"}
        body.update(overrides)
        return json.dumps(body).encode()

    def test_default_generated_stream(self):
        request = protocol.parse_session_request(self._body())
        assert request.tg.n_tasks == 8
        assert len(request.scenario) == 50  # generator default
        assert request.include_trace is False

    def test_generate_parameters_respected(self):
        request = protocol.parse_session_request(self._body(
            generate={"seed": 9, "events": 12, "rates": {"drift": 5.0}},
        ))
        assert request.scenario.seed == 9
        assert len(request.scenario) == 12

    def test_generate_is_deterministic(self):
        body = self._body(generate={"seed": 3, "events": 20})
        a = protocol.parse_session_request(body)
        b = protocol.parse_session_request(body)
        assert a.scenario.fingerprint() == b.scenario.fingerprint()

    def test_inline_scenario_accepted(self):
        from repro.online import generate_scenario

        seed_req = protocol.parse_session_request(
            self._body(generate={"seed": 5, "events": 8})
        )
        inline = protocol.parse_session_request(self._body(
            scenario=json.loads(json.dumps(seed_req.scenario.to_dict()))
        ))
        assert inline.scenario.fingerprint() == seed_req.scenario.fingerprint()

    def test_scenario_and_generate_together_rejected(self):
        with pytest.raises(ProtocolError, match="at most one"):
            protocol.parse_session_request(self._body(
                scenario={"format": "oregami-scenario-v1"},
                generate={"seed": 1},
            ))

    def test_scenario_must_be_inline_object(self):
        with pytest.raises(ProtocolError, match="never reads files"):
            protocol.parse_session_request(
                self._body(scenario="/tmp/scenario.json")
            )

    def test_bad_scenario_rejected(self):
        with pytest.raises(ProtocolError, match="bad 'scenario'"):
            protocol.parse_session_request(
                self._body(scenario={"format": "nope"})
            )

    def test_unknown_generate_key_rejected(self):
        with pytest.raises(ProtocolError, match="unknown 'generate' keys"):
            protocol.parse_session_request(
                self._body(generate={"meteors": 2})
            )

    def test_session_config_knobs_applied(self):
        request = protocol.parse_session_request(self._body(
            session={"drift_threshold": 0.5, "cooldown_events": 7},
        ))
        assert request.config.drift_threshold == 0.5
        assert request.config.cooldown_events == 7

    def test_bad_session_knob_rejected(self):
        with pytest.raises(ProtocolError, match="bad 'session'"):
            protocol.parse_session_request(
                self._body(session={"warp_speed": 9})
            )

    def test_process_executor_rejected_over_http(self):
        with pytest.raises(ProtocolError, match="'serial' or 'thread'"):
            protocol.parse_session_request(
                self._body(session={"executor": "process"})
            )

    def test_unknown_keys_rejected(self):
        with pytest.raises(ProtocolError, match="unknown request keys"):
            protocol.parse_session_request(self._body(shellcode="x"))

    def test_topology_required(self):
        raw = json.dumps({"program": "dnc", "bind": {"m": 3}}).encode()
        with pytest.raises(ProtocolError, match="'topology' or 'machine'"):
            protocol.parse_session_request(raw)

    def test_non_boolean_trace_rejected(self):
        with pytest.raises(ProtocolError, match="'trace' must be a boolean"):
            protocol.parse_session_request(self._body(trace=1))

    def test_bad_bindings_are_400_not_500(self):
        # An unknown stdlib parameter raises a LarcsError deep in the
        # evaluator; the protocol layer must surface it as a 400.
        with pytest.raises(ProtocolError) as info:
            protocol.parse_session_request(self._body(
                program="jacobi", bind={"N": 4},
            ))
        assert info.value.status == 400


class TestSessionResponse:
    def test_envelope_shape(self):
        from repro.arch import networks
        from repro.larcs import stdlib
        from repro.online import MappingSession, SessionConfig, generate_scenario

        tg = stdlib.load("dnc", m=3)
        topo = networks.mesh(2, 2)
        scn = generate_scenario(tg, topo, seed=1, n_events=5)
        report = MappingSession(
            tg, topo, SessionConfig(checkpoint_every=0)
        ).run(scn.events)
        body = json.loads(protocol.session_response(
            scn, report, include_trace=False, elapsed_s=0.25,
        ))
        assert body["format"] == protocol.SESSION_FORMAT
        assert body["scenario"]["events"] == 5
        assert body["scenario"]["fingerprint"] == scn.fingerprint()
        assert body["report"]["counters"]
        assert "records" not in body["report"].get("trace", {})
        assert body["serving"]["version"] == __version__
        assert body["serving"]["elapsed_ms"] == 250.0
