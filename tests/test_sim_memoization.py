"""Step memoization must be invisible: cached and uncached runs agree exactly.

The simulator memoizes per-step outcomes keyed by the step's phase set
(``simulate(..., memoize=True)``, the default).  These tests pin the
semantics-preservation contract on the paper's workloads: every field of
:class:`SimulationResult` -- ``total_time``, ``step_times``, ``link_busy``,
``proc_busy``, ``messages``, ``phase_time`` -- must be *bit-identical*
between memoized and cache-disabled runs, under both switching modes.
"""

import pytest

from repro.arch import networks
from repro.graph import families
from repro.graph.phase_expr import Rep
from repro.larcs import stdlib
from repro.mapper import map_computation
from repro.sim import CostModel, simulate

WORKLOADS = [
    ("jacobi8x8", lambda: stdlib.load("jacobi", rows=8, cols=8, msize=4),
     lambda: networks.mesh(4, 4)),
    ("fft64", lambda: stdlib.load("fft", m=6, msize=4),
     lambda: networks.hypercube(4)),
    ("nbody63", lambda: families.nbody(63, volume=4.0),
     lambda: networks.hypercube(4)),
]

SWITCHING = ["store_and_forward", "cut_through"]


def assert_identical(a, b):
    assert a.total_time == b.total_time
    assert a.step_times == b.step_times
    assert a.link_busy == b.link_busy
    assert a.proc_busy == b.proc_busy
    assert a.messages == b.messages
    assert a.phase_time == b.phase_time


@pytest.mark.parametrize("switching", SWITCHING)
@pytest.mark.parametrize("name,tg_fn,topo_fn", WORKLOADS)
def test_memoized_equals_uncached(name, tg_fn, topo_fn, switching):
    tg, topo = tg_fn(), topo_fn()
    mapping = map_computation(tg, topo)
    model = CostModel(hop_latency=1.0, byte_time=0.5, exec_time=0.05,
                      switching=switching)
    memo = simulate(mapping, model, memoize=True)
    plain = simulate(mapping, model, memoize=False)
    assert_identical(memo, plain)
    assert memo.total_time > 0


@pytest.mark.parametrize("switching", SWITCHING)
def test_repeated_phase_expression(switching):
    """A 50x-repeated step sequence exercises the cache heavily."""
    tg = stdlib.load("jacobi", rows=4, cols=4, msize=2)
    tg.phase_expr = Rep(tg.phase_expr, 50)
    mapping = map_computation(tg, networks.mesh(2, 2))
    model = CostModel(switching=switching)
    memo = simulate(mapping, model)
    plain = simulate(mapping, model, memoize=False)
    assert_identical(memo, plain)
    # Each of the 5 distinct steps recurs 50 times.
    assert len(memo.step_times) == 250


def test_memoized_repetitions_scale_linearly():
    """k repetitions of a step sequence cost exactly k times one pass."""
    def run(reps):
        tg = families.ring(8, volume=2.0)
        tg.phase_expr = Rep(tg.phase_expr, reps)
        mapping = map_computation(tg, networks.hypercube(3))
        return simulate(mapping)

    one, ten = run(1), run(10)
    assert ten.total_time == pytest.approx(10 * one.total_time)
    assert ten.messages == 10 * one.messages


def test_simulate_result_equality_object():
    """The dataclass equality used elsewhere covers every field."""
    tg = families.ring(6)
    mapping = map_computation(tg, networks.hypercube(3))
    assert simulate(mapping) == simulate(mapping, memoize=False)
