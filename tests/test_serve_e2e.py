"""End-to-end tests against a real ``repro serve`` subprocess.

Boots ``python -m repro serve --port 0`` exactly as a user would, talks
to it over real sockets, and asserts the serving contract: versioned
health, cold-compute vs warm-hit with byte-identical ``result`` members,
structured 400/404/504 errors, thundering-herd deduplication observable
in ``/v1/stats``, and a graceful SIGTERM drain that answers every
in-flight request before exiting 0.
"""

import http.client
import json
import os
import signal
import threading
import time

import pytest

from repro import __version__
from repro.serve import loadgen

BODY = {
    "program": "dnc",
    "bind": {"m": 3},
    "topology": "mesh:2x2",
}
# distinct cost-model values give distinct pipeline fingerprints
_uniq = iter(range(10_000))


def unique_body(**overrides) -> dict:
    body = dict(BODY)
    body["config"] = {"sim": {"hop_latency": 2.0 + next(_uniq) * 0.001}}
    body.update(overrides)
    return body


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    cache_dir = str(tmp_path_factory.mktemp("serve-cache"))
    env = {**os.environ, "REPRO_CACHE_DIR": cache_dir}
    env.pop("REPRO_CACHE", None)
    env.pop("REPRO_CHAOS", None)
    process, host, port = loadgen.spawn_server(env=env)
    yield host, port
    loadgen.drain_server(process)


class TestEndpoints:
    def test_health_reports_version(self, server):
        host, port = server
        status, doc = loadgen.request_once(host, port, "GET", "/v1/health")
        assert status == 200
        assert doc["format"] == "oregami-serve-health-v1"
        assert doc["status"] == "ok"
        assert doc["version"] == __version__

    def test_server_header_names_the_version(self, server):
        host, port = server
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            conn.request("GET", "/v1/health")
            response = conn.getresponse()
            response.read()
            assert response.getheader("Server") == f"repro/{__version__}"
        finally:
            conn.close()

    def test_unknown_route_is_404(self, server):
        host, port = server
        for method, path in [("GET", "/nope"), ("POST", "/v1/nope")]:
            status, doc = loadgen.request_once(host, port, method, path,
                                               body={} if method == "POST"
                                               else None)
            assert status == 404
            assert doc["error"]["type"] == "NotFound"

    def test_stats_shape(self, server):
        host, port = server
        status, doc = loadgen.request_once(host, port, "GET", "/v1/stats")
        assert status == 200
        assert doc["format"] == "oregami-serve-stats-v1"
        assert {"server", "cache", "batcher", "perf_counters"} <= set(doc)
        assert doc["cache"]["disk"]["directory"]


class TestMapping:
    def test_cold_then_warm_bit_identical(self, server):
        host, port = server
        body = unique_body()
        s1, cold = loadgen.request_once(host, port, "POST", "/v1/map", body)
        s2, warm = loadgen.request_once(host, port, "POST", "/v1/map", body)
        assert (s1, s2) == (200, 200)
        assert cold["serving"]["cache"]["hit"] is False
        assert cold["serving"]["cache"]["tier"] == "computed"
        assert warm["serving"]["cache"]["hit"] is True
        assert warm["serving"]["cache"]["tier"] in ("memory", "disk")
        assert cold["result"] == warm["result"]
        assert cold["serving"]["cache"]["key"] == warm["serving"]["cache"]["key"]
        assert "cache" not in cold["result"]

    def test_no_cache_config_always_computes(self, server):
        host, port = server
        body = unique_body()
        body["config"]["cache"] = False
        for _ in range(2):
            status, doc = loadgen.request_once(host, port, "POST", "/v1/map",
                                               body)
            assert status == 200
            assert doc["serving"]["cache"]["tier"] == "computed"

    def test_malformed_json_is_400(self, server):
        host, port = server
        conn = http.client.HTTPConnection(*server, timeout=30)
        try:
            conn.request("POST", "/v1/map", body=b"{broken",
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            doc = json.loads(response.read())
            assert response.status == 400
            assert doc["error"]["type"] == "BadRequest"
            assert doc["error"]["exit_code"] == 2
            assert "JSON" in doc["error"]["message"]
        finally:
            conn.close()

    def test_unknown_program_is_400(self, server):
        host, port = server
        status, doc = loadgen.request_once(
            host, port, "POST", "/v1/map",
            {"program": "nonesuch", "topology": "ring:4"},
        )
        assert status == 400
        assert "unknown stdlib program" in doc["error"]["message"]

    def test_blown_deadline_is_504(self, server):
        host, port = server
        body = unique_body(
            program="jacobi",
            bind={"rows": 16, "cols": 16, "msize": 4},
            topology="mesh:4x4",
        )
        body["deadline_s"] = 0.001
        status, doc = loadgen.request_once(host, port, "POST", "/v1/map",
                                           body, timeout=60)
        assert status == 504
        assert doc["error"]["exit_code"] == 3

    def test_herd_computes_once(self, server):
        host, port = server
        _, before = loadgen.request_once(host, port, "GET", "/v1/stats")
        herd_body = unique_body()
        result = loadgen.fire(host, port, [herd_body] * 40, concurrency=40,
                              barrier=True, timeout=120)
        assert result.errors == 0
        assert len(result.result_hashes) == 1
        _, after = loadgen.request_once(host, port, "GET", "/v1/stats")
        computed = after["cache"]["computed"] - before["cache"]["computed"]
        assert computed == 1
        assert result.computed == 1  # exactly one "computed" tier response

    def test_repeat_burst_is_deterministic(self, server):
        host, port = server
        bodies = [unique_body() for _ in range(6)] * 3
        first = loadgen.fire(host, port, bodies, concurrency=6)
        second = loadgen.fire(host, port, bodies, concurrency=6)
        assert first.errors == 0 and second.errors == 0
        assert first.result_hashes == second.result_hashes
        assert second.hits == len(bodies)


class TestGracefulDrain:
    def test_sigterm_drains_in_flight_request(self, tmp_path):
        env = {**os.environ, "REPRO_CACHE_DIR": str(tmp_path)}
        env.pop("REPRO_CACHE", None)
        process, host, port = loadgen.spawn_server(env=env)
        slow_body = {
            "program": "jacobi",
            "bind": {"rows": 32, "cols": 32, "msize": 4},
            "topology": "mesh:8x8",
        }
        outcome = {}

        def post():
            outcome["response"] = loadgen.request_once(
                host, port, "POST", "/v1/map", slow_body, timeout=120
            )

        poster = threading.Thread(target=post)
        poster.start()
        time.sleep(0.5)  # request is in flight (compute takes seconds)
        process.send_signal(signal.SIGTERM)
        poster.join(timeout=120)
        assert not poster.is_alive()
        status, doc = outcome["response"]
        assert status == 200
        assert doc["result"]["mapping"]
        assert process.wait(timeout=60) == 0
        output = process.stdout.read()
        process.stdout.close()
        assert "drained" in output

    def test_loadgen_check_passes_end_to_end(self, tmp_path):
        """The CI smoke entry point: spawn, burst, check hits, drain."""
        env = {**os.environ, "REPRO_CACHE_DIR": str(tmp_path)}
        env.pop("REPRO_CACHE", None)
        old = dict(os.environ)
        os.environ.clear()
        os.environ.update(env)
        try:
            rc = loadgen.main([
                "--spawn", "--requests", "24", "--concurrency", "8",
                "--unique", "4", "--check-hits",
            ])
        finally:
            os.environ.clear()
            os.environ.update(old)
        assert rc == 0


class TestSession:
    BODY = {
        "program": "dnc",
        "bind": {"m": 3},
        "topology": "mesh:2x2",
        "generate": {"seed": 11, "events": 10},
    }

    def test_cold_session_runs_scenario(self, server):
        host, port = server
        status, doc = loadgen.request_once(
            host, port, "POST", "/v1/session", self.BODY, timeout=120
        )
        assert status == 200
        assert doc["format"] == "oregami-serve-session-v1"
        assert doc["scenario"]["events"] == 10
        assert doc["report"]["events"] == 10
        assert doc["report"]["final_comm_cost"] > 0

    def test_repeat_resumes_from_journal_bit_identically(self, server):
        host, port = server
        body = dict(self.BODY, generate={"seed": 12, "events": 10})
        s1, cold = loadgen.request_once(host, port, "POST", "/v1/session",
                                        body, timeout=120)
        s2, warm = loadgen.request_once(host, port, "POST", "/v1/session",
                                        body, timeout=120)
        assert (s1, s2) == (200, 200)
        assert cold["report"]["resumed_at"] is None
        assert warm["report"]["resumed_at"] == 10
        assert (warm["report"]["trace_fingerprint"]
                == cold["report"]["trace_fingerprint"])
        assert (warm["report"]["final_comm_cost"]
                == cold["report"]["final_comm_cost"])

    def test_bad_session_request_is_400(self, server):
        host, port = server
        status, doc = loadgen.request_once(
            host, port, "POST", "/v1/session",
            dict(self.BODY, session={"executor": "process"}),
        )
        assert status == 400
        assert "'serial' or 'thread'" in doc["error"]["message"]

    def test_session_stats_counted(self, server):
        host, port = server
        _, stats = loadgen.request_once(host, port, "GET", "/v1/stats")
        assert stats["server"]["session_requests"] >= 2
        assert stats["server"]["session_errors"] >= 1
