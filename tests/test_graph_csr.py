"""Tests for the CSR static-graph bundle (:mod:`repro.graph.csr`).

The contract under test: :meth:`TaskGraph.csr` is the flat-array twin of
``static_graph()`` -- same folded undirected weights bit for bit, same
edge iteration order, plus the raw directed message stream -- cached
behind the same mutation counter.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import TaskGraph, families
from repro.graph.csr import CSRGraph

FAMILY_GRID = [
    ("ring", lambda: families.ring(17)),
    ("mesh", lambda: families.mesh(5, 7)),
    ("torus", lambda: families.torus(4, 6)),
    ("hypercube", lambda: families.hypercube(4)),
    ("butterfly", lambda: families.fft_butterfly(16)),
    ("binomial_tree", lambda: families.binomial_tree(5)),
    ("nbody", lambda: families.nbody(9)),
    ("rgg", lambda: families.random_geometric(60, seed=3)),
    ("kron", lambda: families.kron(6, edge_factor=8, seed=1)),
]


def directed_stream(tg):
    """The declaration-order message stream straight off the phases."""
    idx = tg.task_index()
    out = []
    for ph in tg.comm_phases.values():
        for e in ph.edges:
            out.append((idx[e.src], idx[e.dst], e.volume))
    return out


@pytest.mark.parametrize("name,make", FAMILY_GRID, ids=[n for n, _ in FAMILY_GRID])
class TestCsrMatchesNx:
    def test_task_bijection(self, name, make):
        tg = make()
        csr = tg.csr()
        assert csr.tasks == tuple(tg.nodes)
        assert csr.n == tg.n_tasks
        assert all(csr.index[t] == i for i, t in enumerate(csr.tasks))
        assert csr.index == tg.task_index()

    def test_folded_pairs_match_static_graph_exactly(self, name, make):
        """Same pairs, same order, bit-identical accumulated weights."""
        tg = make()
        csr = tg.csr()
        idx = tg.task_index()
        nx_edges = [
            (idx[u], idx[v], d["weight"])
            for u, v, d in tg.static_graph().edges(data=True)
        ]
        nx_edges = [(min(u, v), max(u, v), w) for u, v, w in nx_edges]
        got = list(
            zip(csr.edge_u.tolist(), csr.edge_v.tolist(), csr.edge_w.tolist())
        )
        assert got == nx_edges  # exact ==, including float bits

    def test_directed_stream_is_declaration_order(self, name, make):
        tg = make()
        csr = tg.csr()
        want = directed_stream(tg)
        got = list(zip(csr.src.tolist(), csr.dst.tolist(), csr.vol.tolist()))
        assert got == want

    def test_adjacency_is_symmetric_with_ascending_columns(self, name, make):
        tg = make()
        csr = tg.csr()
        assert csr.indptr.shape == (csr.n + 1,)
        assert csr.indptr[0] == 0 and csr.indptr[-1] == csr.nnz
        assert csr.nnz == 2 * csr.edge_u.size
        pw = csr.pair_weight_map()
        for u in range(csr.n):
            cols = csr.indices[csr.indptr[u] : csr.indptr[u + 1]]
            ws = csr.weights[csr.indptr[u] : csr.indptr[u + 1]]
            assert np.all(np.diff(cols) > 0)  # strictly ascending, no loops
            for v, w in zip(cols.tolist(), ws.tolist()):
                assert pw[(min(u, v), max(u, v))] == w

    def test_degrees_match_static_graph(self, name, make):
        tg = make()
        csr = tg.csr()
        G = tg.static_graph()
        idx = tg.task_index()
        want = np.zeros(csr.n, dtype=np.intp)
        for t in tg.nodes:
            want[idx[t]] = G.degree(t)
        assert np.array_equal(csr.degrees(), want)

    def test_node_weights(self, name, make):
        tg = make()
        csr = tg.csr()
        assert csr.node_weights.tolist() == [tg.node_weight(t) for t in tg.nodes]


class TestCsrCaching:
    def test_cached_behind_mutation_counter(self):
        tg = families.ring(8)
        first = tg.csr()
        assert tg.csr() is first  # cache hit
        tg.add_node("extra")
        second = tg.csr()
        assert second is not first
        assert second.n == first.n + 1

    def test_edge_append_invalidates(self):
        tg = families.ring(8)
        first = tg.csr()
        ph = next(iter(tg.comm_phases.values()))
        ph.add(0, 4, 3.0)
        second = tg.csr()
        assert second is not first
        assert second.vol.size == first.vol.size + 1
        assert second.pair_weight_map()[(0, 4)] == 3.0

    def test_empty_and_edgeless_graphs(self):
        tg = TaskGraph("empty")
        csr = tg.csr()
        assert isinstance(csr, CSRGraph)
        assert csr.n == 0 and csr.nnz == 0
        tg2 = TaskGraph("lonely")
        tg2.add_nodes(range(3))
        csr2 = tg2.csr()
        assert csr2.n == 3 and csr2.nnz == 0
        assert csr2.indptr.tolist() == [0, 0, 0, 0]


@given(
    n=st.integers(min_value=1, max_value=12),
    edges=st.lists(
        st.tuples(
            st.integers(0, 11),
            st.integers(0, 11),
            st.floats(0.125, 100.0, allow_nan=False, width=32),
        ),
        max_size=40,
    ),
)
@settings(max_examples=60, deadline=None)
def test_random_multigraph_fold_matches_nx(n, edges):
    """Parallel/antiparallel/self-loop soup folds identically to nx."""
    tg = TaskGraph("rand")
    tg.add_nodes(range(n))
    ph = tg.add_comm_phase("c")
    for u, v, w in edges:
        ph.add(u % n, v % n, float(w))
    csr = tg.csr()
    G = tg.static_graph()
    got = {
        (min(u, v), max(u, v)): w
        for u, v, w in zip(
            csr.edge_u.tolist(), csr.edge_v.tolist(), csr.edge_w.tolist()
        )
    }
    want = {
        (min(u, v), max(u, v)): d["weight"]
        for u, v, d in G.edges(data=True)
        if u != v
    }
    assert got == want  # keys and float bits
    # Directed stream keeps the self-loops the fold drops.
    loops = sum(1 for u, v, _ in edges if u % n == v % n)
    assert int(np.sum(csr.src == csr.dst)) == loops
