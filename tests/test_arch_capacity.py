"""Unit tests for the multi-resource capacity model (repro.arch.capacity)."""

import numpy as np
import pytest

from repro.arch import networks
from repro.arch.capacity import DEMAND_RULES, Capacities
from repro.graph import families


def _ring_tg(n=6):
    return families.ring(n)


class TestCapacitiesConstruction:
    def test_bare_names_default_to_unit_rule(self):
        caps = Capacities(["slots"], {0: (4,), 1: (4,)})
        assert caps.names == ("slots",)
        assert caps.rules == ("unit",)
        assert caps.n_resources == 1

    def test_name_rule_pairs(self):
        caps = Capacities(
            [("slots", "unit"), ("memory", "weight")],
            {0: (4, 16.0), 1: (2, 8.0)},
        )
        assert caps.names == ("slots", "memory")
        assert caps.rules == ("unit", "weight")
        assert caps.cap_for(1) == (2.0, 8.0)

    def test_scalar_cap_accepted_for_single_resource(self):
        caps = Capacities(["memory"], {0: 16, 1: 8})
        assert caps.cap_for(0) == (16.0,)

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="unknown demand rule"):
            Capacities([("memory", "bytes")], {0: (1,)})
        assert "bytes" not in DEMAND_RULES

    def test_duplicate_resource_rejected(self):
        with pytest.raises(ValueError, match="duplicate resource"):
            Capacities(["m", "m"], {0: (1, 1)})

    def test_wrong_vector_length_rejected(self):
        with pytest.raises(ValueError, match="capacity entries"):
            Capacities(["a", "b"], {0: (1,)})

    def test_negative_or_nonfinite_cap_rejected(self):
        with pytest.raises(ValueError, match="finite and"):
            Capacities(["m"], {0: (-1,)})
        with pytest.raises(ValueError, match="finite and"):
            Capacities(["m"], {0: (float("inf"),)})

    def test_empty_resources_or_procs_rejected(self):
        with pytest.raises(ValueError, match="at least one resource"):
            Capacities([], {0: ()})
        with pytest.raises(ValueError, match="at least one processor"):
            Capacities(["m"], {})

    def test_uniform_builder(self):
        caps = Capacities.uniform(["m"], range(4), 8.0)
        assert caps.procs == [0, 1, 2, 3]
        assert all(caps.cap_for(p) == (8.0,) for p in range(4))


class TestFromSpec:
    def test_bare_number_is_uniform_unit_resource(self):
        caps = Capacities.from_spec({"slots": 4}, [0, 1, 2])
        assert caps.rules == ("unit",)
        assert caps.cap_for(2) == (4.0,)

    def test_object_form_with_demand_rule(self):
        caps = Capacities.from_spec(
            {"memory": {"demand": "weight", "cap": 16.0}}, [0, 1]
        )
        assert caps.rules == ("weight",)
        assert caps.cap_for(0) == (16.0,)

    def test_per_proc_overrides(self):
        caps = Capacities.from_spec(
            {"memory": {"cap": 8.0, "per_proc": [[1, 2.0]]}}, [0, 1]
        )
        assert caps.cap_for(0) == (8.0,)
        assert caps.cap_for(1) == (2.0,)

    def test_per_proc_tuple_labels_decode(self):
        caps = Capacities.from_spec(
            {"memory": {"cap": 8.0, "per_proc": [[[0, 1], 3.0]]}},
            [(0, 0), (0, 1)],
        )
        assert caps.cap_for((0, 1)) == (3.0,)

    def test_unknown_proc_override_rejected(self):
        with pytest.raises(ValueError, match="unknown\\s+processor"):
            Capacities.from_spec(
                {"memory": {"cap": 8.0, "per_proc": [[9, 1.0]]}}, [0, 1]
            )

    def test_missing_cap_rejected(self):
        with pytest.raises(ValueError, match="needs a 'cap'"):
            Capacities.from_spec({"memory": {"demand": "unit"}}, [0])

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown keys"):
            Capacities.from_spec({"memory": {"cap": 1, "color": "red"}}, [0])


class TestSerializationAndRestriction:
    def _caps(self):
        return Capacities(
            [("slots", "unit"), ("memory", "weight")],
            {0: (4, 16.0), 1: (2, 8.0), 2: (4, 16.0)},
        )

    def test_dict_round_trip(self):
        caps = self._caps()
        again = Capacities.from_dict(caps.to_dict())
        assert again == caps

    def test_restrict_keeps_survivors_only(self):
        caps = self._caps().restrict([0, 2])
        assert caps.procs == [0, 2]
        with pytest.raises(KeyError):
            caps.cap_for(1)

    def test_validate_against_flags_missing_and_extra(self):
        caps = self._caps()
        with pytest.raises(ValueError, match="missing"):
            caps.validate_against([0, 1, 2, 3])
        with pytest.raises(ValueError, match="unknown processors"):
            caps.validate_against([0, 1])

    def test_fingerprint_payload_is_label_sorted(self):
        payload = self._caps().fingerprint_payload()
        labels = [item[0] for item in payload["caps"]]
        assert labels == sorted(labels, key=str)


class TestCapacityContext:
    def _ctx(self, cap_vec=(3, 12.0)):
        topo = networks.ring(4)
        caps = Capacities.uniform(
            [("slots", "unit"), ("memory", "weight")],
            topo.processors,
            cap_vec,
        )
        tg = _ring_tg(6)
        return caps.context(tg, topo), tg, topo

    def test_matrix_shapes_and_rules(self):
        ctx, tg, topo = self._ctx()
        assert ctx.cap.shape == (4, 2)
        assert ctx.dem.shape == (6, 2)
        # unit column is all ones; weight column follows node weights
        assert np.all(ctx.dem[:, 0] == 1.0)
        assert np.allclose(
            ctx.dem[:, 1], [tg.node_weight(t) for t in tg.nodes]
        )

    def test_cluster_demand_sums_members(self):
        ctx, tg, _ = self._ctx()
        tasks = list(tg.nodes)[:3]
        vec = ctx.cluster_demand(tasks)
        assert vec[0] == 3.0

    def test_fits_somewhere_and_feasible_mask(self):
        ctx, _, _ = self._ctx(cap_vec=(2, 12.0))
        assert ctx.fits_somewhere(np.array([2.0, 2.0]))
        assert not ctx.fits_somewhere(np.array([3.0, 2.0]))
        mask = ctx.feasible_mask(np.array([2.0, 2.0]))
        assert mask.shape == (4,) and mask.all()

    def test_proc_load_and_overflow_report(self):
        ctx, tg, topo = self._ctx(cap_vec=(2, 12.0))
        tasks = list(tg.nodes)
        # all six tasks on processor 0: slots 6 > 2
        assignment = {t: topo.processors[0] for t in tasks}
        load = ctx.proc_load(assignment)
        assert load[0, 0] == 6.0 and load[1, 0] == 0.0
        report = ctx.overflows(assignment)
        assert report and report[0]["resource"] == "slots"
        assert report[0]["processor"] == topo.processors[0]
        assert report[0]["demand"] == 6.0 and report[0]["capacity"] == 2.0

    def test_overflow_report_empty_when_feasible(self):
        ctx, tg, topo = self._ctx()
        tasks = list(tg.nodes)
        assignment = {
            t: topo.processors[i % 4] for i, t in enumerate(tasks)
        }
        assert ctx.overflows(assignment) == []

    def test_overflow_report_ordered_by_proc_then_resource(self):
        ctx, tg, topo = self._ctx(cap_vec=(1, 1.0))
        assignment = {t: topo.processors[0] for t in list(tg.nodes)[:4]}
        assignment.update(
            {t: topo.processors[2] for t in list(tg.nodes)[4:]}
        )
        report = ctx.overflows(assignment)
        keys = [(topo.index_of(r["processor"]), r["resource"]) for r in report]
        assert keys == sorted(
            keys, key=lambda k: (k[0], ctx.capacities.names.index(k[1]))
        )
