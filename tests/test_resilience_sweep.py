"""Tests for the single-fault criticality sweep (repro.resilience.sweep)."""

import math

import pytest

from repro.arch import networks
from repro.graph import families
from repro.larcs import stdlib
from repro.mapper import map_computation
from repro.resilience import failure_sweep


def jacobi_sweep(**kwargs):
    tg = stdlib.load("jacobi", rows=4, cols=4, msize=2)
    topo = networks.hypercube(4)
    return failure_sweep(tg, topo, **kwargs)


class TestSweepBasics:
    def test_processor_sweep_covers_every_proc(self):
        sweep = jacobi_sweep()
        assert len(sweep.entries) == 16
        assert [e.element for e in sweep.entries] == list(range(16))
        assert all(e.kind == "proc" for e in sweep.entries)

    def test_link_sweep_covers_every_link(self):
        sweep = jacobi_sweep(elements="links")
        assert len(sweep.entries) == networks.hypercube(4).n_links
        assert all(e.kind == "link" for e in sweep.entries)

    def test_both(self):
        sweep = jacobi_sweep(elements="both")
        topo = networks.hypercube(4)
        assert len(sweep.entries) == topo.n_processors + topo.n_links

    def test_unknown_elements_rejected(self):
        with pytest.raises(ValueError, match="unknown elements"):
            jacobi_sweep(elements="everything")

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            jacobi_sweep(executor="gpu")

    def test_ratios_at_least_one(self):
        # Repairing a real fault never beats the pristine machine here.
        sweep = jacobi_sweep()
        assert all(e.ratio >= 1.0 for e in sweep.entries if e.status == "ok")

    def test_supplied_mapping_reused(self):
        tg = stdlib.load("jacobi", rows=4, cols=4, msize=2)
        topo = networks.hypercube(4)
        m = map_computation(tg, topo)
        sweep = failure_sweep(tg, topo, mapping=m)
        assert sweep.baseline_time > 0


class TestDisconnects:
    def test_bridge_link_disconnects(self):
        tg = families.linear(4)
        topo = networks.linear(4)
        sweep = failure_sweep(tg, topo, elements="links")
        assert all(e.status == "disconnects" for e in sweep.entries)
        assert all(math.isinf(e.ratio) for e in sweep.entries)

    def test_disconnects_rank_first(self):
        tg = families.linear(4)
        topo = networks.linear(4)
        sweep = failure_sweep(tg, topo, elements="both")
        ranking = sweep.ranking()
        statuses = [e.status for e in ranking]
        # All disconnecting faults come before every survivable one.
        assert statuses == sorted(statuses, key=lambda s: s != "disconnects")
        dist = sweep.distribution()
        assert dist["disconnecting"] >= 3  # every interior link is a bridge

    def test_interior_proc_disconnects_linear_array(self):
        tg = families.linear(3)
        topo = networks.linear(4)
        sweep = failure_sweep(tg, topo)
        by_proc = {e.element: e for e in sweep.entries}
        assert by_proc[1].status == "disconnects"
        assert by_proc[0].status == "ok"


class TestDeterminism:
    def test_identical_across_executors_and_worker_counts(self):
        runs = [
            jacobi_sweep(executor="serial"),
            jacobi_sweep(executor="thread", max_workers=3),
            jacobi_sweep(executor="process", max_workers=2),
            jacobi_sweep(executor="process", max_workers=5),
        ]
        reference = [
            (e.label, e.status, e.ratio, e.moved_tasks, e.rerouted)
            for e in runs[0].ranking()
        ]
        for run in runs[1:]:
            assert [
                (e.label, e.status, e.ratio, e.moved_tasks, e.rerouted)
                for e in run.ranking()
            ] == reference

    def test_to_dict_round_trips_to_json(self):
        import json

        sweep = jacobi_sweep(elements="both")
        text = json.dumps(sweep.to_dict())
        data = json.loads(text)
        assert data["distribution"]["faults"] == len(sweep.entries)
        assert len(data["ranking"]) == len(sweep.entries)
