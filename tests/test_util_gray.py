"""Tests for binary-reflected Gray codes (repro.util.gray)."""

import pytest
from hypothesis import given, strategies as st

from repro.util.gray import gray_code, gray_rank, gray_sequence, hamming


class TestGrayCode:
    def test_first_eight_words(self):
        assert [gray_code(i) for i in range(8)] == [0, 1, 3, 2, 6, 7, 5, 4]

    def test_zero(self):
        assert gray_code(0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gray_code(-1)

    @given(st.integers(min_value=0, max_value=2**20))
    def test_consecutive_words_differ_in_one_bit(self, i):
        assert hamming(gray_code(i), gray_code(i + 1)) == 1

    @given(st.integers(min_value=0, max_value=2**20))
    def test_rank_inverts_code(self, i):
        assert gray_rank(gray_code(i)) == i

    @given(st.integers(min_value=0, max_value=2**20))
    def test_code_inverts_rank(self, g):
        assert gray_code(gray_rank(g)) == g

    def test_rank_negative_rejected(self):
        with pytest.raises(ValueError):
            gray_rank(-3)


class TestGraySequence:
    def test_is_permutation_of_labels(self):
        for nbits in range(6):
            seq = gray_sequence(nbits)
            assert sorted(seq) == list(range(1 << nbits))

    def test_cyclic_adjacency(self):
        # The sequence is a Hamiltonian ring of the hypercube: wraparound
        # neighbours also differ in one bit.
        for nbits in range(1, 7):
            seq = gray_sequence(nbits)
            for a, b in zip(seq, seq[1:] + seq[:1]):
                assert hamming(a, b) == 1

    def test_zero_bits(self):
        assert gray_sequence(0) == [0]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gray_sequence(-1)


class TestHamming:
    def test_identical(self):
        assert hamming(13, 13) == 0

    def test_known_values(self):
        assert hamming(0b1010, 0b0101) == 4
        assert hamming(0, 7) == 3
