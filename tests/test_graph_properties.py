"""Tests for regularity detection (repro.graph.properties)."""

from repro.graph import TaskGraph, families
from repro.graph.properties import (
    cayley_group_of,
    comm_functions,
    is_node_symmetric,
    regularity_report,
)


class TestCommFunctions:
    def test_ring_phases_are_permutations(self):
        perms = comm_functions(families.ring(6))
        assert perms is not None
        assert str(perms["ring"]) == "(012345)"

    def test_nbody_both_phases(self):
        perms = comm_functions(families.nbody(7))
        assert set(perms) == {"ring", "chordal"}
        assert perms["chordal"](0) == 4

    def test_non_bijection_returns_none(self):
        tg = families.star(4)  # broadcast is one-to-many
        assert comm_functions(tg) is None

    def test_partial_function_returns_none(self):
        tg = TaskGraph()
        tg.add_nodes(range(3))
        tg.add_comm_phase("p").add(0, 1)
        assert comm_functions(tg) is None

    def test_non_integer_labels_return_none(self):
        tg = TaskGraph()
        tg.add_nodes(["a", "b"])
        ph = tg.add_comm_phase("p")
        ph.add("a", "b")
        ph.add("b", "a")
        assert comm_functions(tg) is None


class TestCayleyDetection:
    def test_ring_is_cayley(self):
        assert cayley_group_of(families.ring(8)) is not None

    def test_nbody_is_cayley(self):
        g = cayley_group_of(families.nbody(15))
        assert g is not None and g.order == 15

    def test_hypercube_is_cayley(self):
        g = cayley_group_of(families.hypercube(3))
        assert g is not None and g.order == 8

    def test_torus_is_cayley(self):
        assert cayley_group_of(families.torus(3, 4)) is not None

    def test_tree_is_not_cayley(self):
        assert cayley_group_of(families.full_binary_tree(2)) is None

    def test_star_is_not_cayley(self):
        assert cayley_group_of(families.star(5)) is None


class TestNodeSymmetry:
    def test_ring_symmetric(self):
        assert is_node_symmetric(families.ring(6)) is True

    def test_star_not_symmetric(self):
        assert is_node_symmetric(families.star(4)) is False

    def test_tree_not_symmetric(self):
        assert is_node_symmetric(families.full_binary_tree(2)) is False

    def test_torus_symmetric(self):
        assert is_node_symmetric(families.torus(3, 3)) is True

    def test_large_graph_unknown(self):
        assert is_node_symmetric(families.ring(100), max_nodes=64) is None

    def test_empty_graph(self):
        assert is_node_symmetric(TaskGraph()) is True


class TestRegularityReport:
    def test_named_family_dispatch(self):
        rep = regularity_report(families.ring(8))
        assert rep.mapper_class == "nameable"

    def test_cayley_dispatch(self):
        tg = families.nbody(9)
        tg.family = None  # hide the name: the group path must catch it
        rep = regularity_report(tg)
        assert rep.cayley and rep.mapper_class == "regular"

    def test_arbitrary_dispatch(self):
        tg = families.full_binary_tree(3)
        tg.family = None
        rep = regularity_report(tg)
        assert rep.mapper_class == "arbitrary"

    def test_flags(self):
        rep = regularity_report(families.nbody(7))
        assert rep.integer_labels and rep.bijective_phases and rep.node_symmetric_hint
