"""Tests for the LaRCS parser."""

import pytest

from repro.larcs import ast
from repro.larcs.errors import LarcsSyntaxError
from repro.larcs.parser import parse_larcs

MINIMAL = """
algorithm tiny(n);
nodetype t[0 .. n-1];
comphase step t(i) -> t((i + 1) mod n);
"""


class TestHeader:
    def test_name_and_params(self):
        prog = parse_larcs(MINIMAL)
        assert prog.name == "tiny"
        assert prog.params == [("n", None)]

    def test_param_defaults(self):
        prog = parse_larcs(
            "algorithm a(n, s = 2);\nnodetype t[0..n-1];\ncomphase p t(i) -> t(i);"
        )
        name, default = prog.params[1]
        assert name == "s" and isinstance(default, ast.Num)

    def test_no_params(self):
        prog = parse_larcs("algorithm a();\nnodetype t[0..3];\ncomphase p t(i) -> t(i);")
        assert prog.params == []

    def test_missing_semicolon(self):
        with pytest.raises(LarcsSyntaxError):
            parse_larcs("algorithm a(n)")

    def test_imports(self):
        prog = parse_larcs(
            "algorithm a(n);\nimport msize = 4, other;\n"
            "nodetype t[0..n-1];\ncomphase p t(i) -> t(i);"
        )
        assert [name for name, _ in prog.imports] == ["msize", "other"]

    def test_constants(self):
        prog = parse_larcs(
            "algorithm a(n);\nconstant half = (n+1)/2;\n"
            "nodetype t[0..n-1];\ncomphase p t(i) -> t(i);"
        )
        assert prog.constants[0].name == "half"


class TestNodeType:
    def test_multidim(self):
        prog = parse_larcs(
            "algorithm a(n, m);\nnodetype cell[0..n-1, 0..m-1];\n"
            "comphase p cell(i, j) -> cell(i, j);"
        )
        assert len(prog.nodetypes[0].ranges) == 2

    def test_nodesymmetric_attr(self):
        prog = parse_larcs(MINIMAL.replace("t[0 .. n-1];", "t[0 .. n-1] nodesymmetric;"))
        assert prog.nodetypes[0].attrs == ["nodesymmetric"]


class TestCommPhase:
    def test_single_rule_form(self):
        prog = parse_larcs(MINIMAL)
        ph = prog.comphases[0]
        assert ph.name == "step" and len(ph.rules) == 1

    def test_braced_multi_rule(self):
        prog = parse_larcs(
            "algorithm a(n);\nnodetype t[0..n-1];\n"
            "comphase p { t(i) -> t(i+1) where i < n-1; t(i) -> t(i-1) where i > 0; }"
        )
        assert len(prog.comphases[0].rules) == 2

    def test_indexed_phase(self):
        prog = parse_larcs(
            "algorithm a(m);\nconstant n = 2**m;\nnodetype t[0..n-1];\n"
            "comphase fly[s : 0..m-1] t(i) -> t(i xor (1 shl s));"
        )
        ph = prog.comphases[0]
        assert ph.index is not None and ph.index[0] == "s"

    def test_forall_and_clauses(self):
        prog = parse_larcs(
            "algorithm a(n);\nnodetype t[0..n-1];\n"
            "comphase p forall j in 0..2 : t(i) -> t(i+j) where j > 0 volume j*2;"
        )
        rule = prog.comphases[0].rules[0]
        assert rule.foralls[0][0] == "j"
        assert rule.where is not None and rule.volume is not None

    def test_duplicate_where_rejected(self):
        with pytest.raises(LarcsSyntaxError):
            parse_larcs(
                "algorithm a(n);\nnodetype t[0..n-1];\n"
                "comphase p t(i) -> t(i) where true where false;"
            )

    def test_volume_before_where_allowed(self):
        prog = parse_larcs(
            "algorithm a(n);\nnodetype t[0..n-1];\n"
            "comphase p t(i) -> t(i+1) volume 2 where i < n-1;"
        )
        rule = prog.comphases[0].rules[0]
        assert rule.volume is not None and rule.where is not None


class TestExecPhase:
    def test_plain(self):
        prog = parse_larcs(MINIMAL + "execphase work cost 5;\n")
        assert prog.execphases[0].name == "work"

    def test_with_binding(self):
        prog = parse_larcs(MINIMAL + "execphase work for t(i) cost i + 1;\n")
        assert prog.execphases[0].binding.typename == "t"

    def test_no_cost(self):
        prog = parse_larcs(MINIMAL + "execphase work;\n")
        assert prog.execphases[0].cost is None


class TestExpressions:
    def parse_expr_via_constant(self, text):
        prog = parse_larcs(
            f"algorithm a(n);\nconstant x = {text};\n"
            "nodetype t[0..n-1];\ncomphase p t(i) -> t(i);"
        )
        return prog.constants[0].value

    def test_precedence_mul_over_add(self):
        e = self.parse_expr_via_constant("1 + 2 * 3")
        assert isinstance(e, ast.BinOp) and e.op == "+"

    def test_power_right_assoc(self):
        e = self.parse_expr_via_constant("2 ** 3 ** 2")
        assert e.op == "**" and isinstance(e.right, ast.BinOp)

    def test_unary_minus(self):
        e = self.parse_expr_via_constant("-n + 1")
        assert e.op == "+" and isinstance(e.left, ast.UnOp)

    def test_builtin_call(self):
        e = self.parse_expr_via_constant("min(n, 4)")
        assert isinstance(e, ast.Call) and e.func == "min"

    def test_unknown_function_rejected(self):
        with pytest.raises(LarcsSyntaxError):
            self.parse_expr_via_constant("frobnicate(n)")

    def test_comparisons_and_bool(self):
        e = self.parse_expr_via_constant("n > 1 and not (n == 2) or false")
        assert e.op == "or"


class TestPhasesDecl:
    def test_paper_nbody_expression(self):
        prog = parse_larcs(
            MINIMAL + "execphase c1;\nexecphase c2;\n"
            "phases ((step; c1)^((n+1)/2); c2)^2;\n"
        )
        assert isinstance(prog.phase_expr, ast.PXRep)

    def test_count_at_multiplicative_precedence(self):
        # The paper's ^(n+1)/2 without extra parens.
        prog = parse_larcs(MINIMAL + "phases step^(n+1)/2;\n")
        rep = prog.phase_expr
        assert isinstance(rep, ast.PXRep) and isinstance(rep.count, ast.BinOp)

    def test_semicolon_separator_and_terminator(self):
        prog = parse_larcs(MINIMAL + "execphase w;\nphases step; w;\n")
        assert isinstance(prog.phase_expr, ast.PXSeq)
        assert len(prog.phase_expr.parts) == 2

    def test_parallel(self):
        prog = parse_larcs(MINIMAL + "execphase w;\nphases step || w;\n")
        assert isinstance(prog.phase_expr, ast.PXPar)

    def test_indexed_seq(self):
        prog = parse_larcs(
            "algorithm a(m);\nconstant n = 2**m;\nnodetype t[0..n-1];\n"
            "comphase fly[s : 0..m-1] t(i) -> t(i xor (1 shl s));\n"
            "execphase c;\n"
            "phases seq s in 0..m-1 : (fly[s]; c);\n"
        )
        px = prog.phase_expr
        assert isinstance(px, ast.PXIndexed) and px.kind == "seq"

    def test_eps(self):
        prog = parse_larcs(MINIMAL + "phases eps || step;\n")
        assert isinstance(prog.phase_expr.parts[0], ast.PXEps)

    def test_duplicate_phases_decl_rejected(self):
        with pytest.raises(LarcsSyntaxError):
            parse_larcs(MINIMAL + "phases step;\nphases step;\n")


class TestErrors:
    def test_garbage_top_level(self):
        with pytest.raises(LarcsSyntaxError):
            parse_larcs("algorithm a(n);\nwibble;")

    def test_error_carries_line(self):
        with pytest.raises(LarcsSyntaxError) as exc:
            parse_larcs("algorithm a(n);\nnodetype t[0..n-1]\ncomphase p t(i) -> t(i);")
        assert "line 3" in str(exc.value)

    def test_noderef_requires_args(self):
        with pytest.raises(LarcsSyntaxError):
            parse_larcs("algorithm a(n);\nnodetype t[0..n-1];\ncomphase p t -> t(0);")
