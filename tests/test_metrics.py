"""Tests for the METRICS suite (analysis, report, session)."""

import pytest

from repro.arch import networks
from repro.graph import families
from repro.larcs import stdlib
from repro.mapper import map_computation
from repro.metrics import (
    MappingSession,
    analyze,
    focus_link,
    focus_processor,
    render_report,
)
from repro.metrics.report import compare_mappings


def nbody_mapping():
    return map_computation(families.nbody(15), networks.hypercube(3))


class TestAnalyze:
    def test_load_metrics(self):
        m = nbody_mapping()
        metrics = analyze(m)
        assert sum(metrics.tasks_per_processor.values()) == 15
        assert metrics.max_tasks == 2 and metrics.min_tasks == 1
        assert metrics.load_imbalance >= 1.0

    def test_exec_time_per_processor(self):
        m = nbody_mapping()
        metrics = analyze(m)
        # The family constructor's compute1 and compute2 cost 1 per task.
        for proc, n_tasks in metrics.tasks_per_processor.items():
            assert metrics.exec_time_per_processor[proc] == pytest.approx(
                n_tasks * 2.0
            )

    def test_dilation_matches_distances(self):
        m = nbody_mapping()
        metrics = analyze(m)
        tg, topo = m.task_graph, m.topology
        for phase, pm in metrics.phase_links.items():
            for idx, edge in enumerate(tg.comm_phase(phase).edges):
                expected = topo.distance(m.proc_of(edge.src), m.proc_of(edge.dst))
                assert pm.dilations[idx] == expected

    def test_total_ipc_counts_crossing_volume_only(self):
        tg = families.ring(4)
        # Force MWM so clusters are the contiguous {0,1} and {2,3} (the
        # group path would pick the striped cosets {0,2}, {1,3}).
        m = map_computation(tg, networks.ring(2), strategy="mwm")
        metrics = analyze(m)
        # Ring edges 1->2 and 3->0 cross between the two clusters.
        assert metrics.total_ipc == 2.0

    def test_contention_positive_on_congested_phase(self):
        m = nbody_mapping()
        metrics = analyze(m)
        # 15 chordal messages over 12 links force at least one shared link.
        assert metrics.phase_links["chordal"].max_contention >= 2

    def test_completion_time_positive(self):
        metrics = analyze(nbody_mapping())
        assert metrics.estimated_completion_time > 0

    def test_phase_critical_time_in_metrics_and_report(self):
        m = nbody_mapping()
        metrics = analyze(m)
        assert set(metrics.phase_critical_time) == {
            "ring",
            "chordal",
            "compute1",
            "compute2",
        }
        assert sum(metrics.phase_critical_time.values()) == pytest.approx(
            metrics.estimated_completion_time
        )
        assert "phase times" in render_report(m, metrics)

    def test_empty_phase_defaults(self):
        tg = families.ring(2)
        tg.add_comm_phase("silent")
        m = map_computation(tg, networks.ring(2))
        metrics = analyze(m)
        pm = metrics.phase_links["silent"]
        assert pm.max_contention == 0
        assert pm.average_dilation == 0.0


class TestReport:
    def test_render_contains_sections(self):
        m = nbody_mapping()
        text = render_report(m)
        assert "load balancing" in text
        assert "link metrics" in text
        assert "total IPC" in text
        assert "nbody15" in text

    def test_focus_processor(self):
        m = nbody_mapping()
        text = focus_processor(m, 0)
        assert "processor 0" in text
        assert "phase ring" in text

    def test_focus_link(self):
        m = nbody_mapping()
        text = focus_link(m, 1)
        assert "link 1" in text
        assert "chordal" in text

    def test_report_renders_for_all_stdlib(self):
        for name, kw, topo in [
            ("jacobi", dict(rows=3, cols=3), networks.mesh(3, 3)),
            ("fft", dict(m=3), networks.hypercube(3)),
            ("voting", dict(m=3), networks.hypercube(2)),
        ]:
            m = map_computation(stdlib.load(name, **kw), topo)
            assert render_report(m)


class TestCompareMappings:
    def test_table_structure(self):
        tg = families.nbody(15)
        topo = networks.hypercube(3)
        table = compare_mappings(
            {
                "canned": map_computation(tg, topo),
                "mwm": map_computation(tg, topo, strategy="mwm"),
            }
        )
        assert "canned" in table and "mwm" in table
        assert "total IPC" in table and "est. completion" in table

    def test_single_mapping(self):
        m = map_computation(families.ring(8), networks.hypercube(3))
        assert "strategy" in compare_mappings({"only": m})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            compare_mappings({})

    def test_precomputed_metrics_accepted(self):
        m = map_computation(families.ring(8), networks.hypercube(3))
        table = compare_mappings({"a": m}, {"a": analyze(m)})
        assert "a" in table


class TestSession:
    def test_move_task_updates_assignment_and_routes(self):
        session = MappingSession(nbody_mapping())
        before = session.metrics.total_ipc
        target = session.mapping.proc_of(1)
        session.move_task(0, target)
        assert session.mapping.proc_of(0) == target
        session.mapping.validate(require_routes=True)
        assert session.metrics.total_ipc != before or True  # recomputed

    def test_move_task_recomputes_metrics(self):
        session = MappingSession(nbody_mapping())
        m1 = session.metrics
        session.move_task(0, session.mapping.proc_of(7))
        m2 = session.metrics
        assert m1 is not m2

    def test_move_unknown_task(self):
        session = MappingSession(nbody_mapping())
        with pytest.raises(KeyError):
            session.move_task(99, 0)
        with pytest.raises(KeyError):
            session.move_task(0, 99)

    def test_reroute_valid(self):
        m = map_computation(families.ring(4), networks.complete(4), strategy="mwm")
        session = MappingSession(m)
        edge = m.task_graph.comm_phase("ring").edges[0]
        src, dst = m.proc_of(edge.src), m.proc_of(edge.dst)
        if src != dst:
            mid = next(
                p for p in m.topology.processors if p not in (src, dst)
            )
            session.reroute("ring", 0, [src, mid, dst])
            assert session.mapping.routes[("ring", 0)] == [src, mid, dst]

    def test_reroute_invalid_path_rejected(self):
        session = MappingSession(nbody_mapping())
        with pytest.raises(ValueError):
            session.reroute("ring", 0, [0, 7])  # 0 and 7 not adjacent in Q3

    def test_reroute_wrong_endpoints_rejected(self):
        session = MappingSession(nbody_mapping())
        m = session.mapping
        with pytest.raises(ValueError):
            session.reroute("ring", 0, [m.proc_of(5), m.proc_of(6)])

    def test_undo_restores(self):
        session = MappingSession(nbody_mapping())
        orig_proc = session.mapping.proc_of(0)
        orig_routes = dict(session.mapping.routes)
        session.move_task(0, session.mapping.proc_of(7))
        session.undo()
        assert session.mapping.proc_of(0) == orig_proc
        assert session.mapping.routes == orig_routes
        assert session.edits == 0

    def test_undo_empty(self):
        session = MappingSession(nbody_mapping())
        with pytest.raises(RuntimeError):
            session.undo()

    def test_report_available(self):
        session = MappingSession(nbody_mapping())
        assert "OREGAMI mapping" in session.report()

    def test_user_can_improve_then_measure(self):
        # The METRICS workflow: inspect, tweak, compare.
        session = MappingSession(nbody_mapping())
        t0 = session.metrics.estimated_completion_time
        session.move_task(0, session.mapping.proc_of(1))
        t1 = session.metrics.estimated_completion_time
        assert t0 > 0 and t1 > 0
