"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import main, parse_bindings, parse_topology


class TestParseTopology:
    def test_hypercube(self):
        t = parse_topology("hypercube:3")
        assert t.n_processors == 8

    def test_mesh_x_form(self):
        t = parse_topology("mesh:3x4")
        assert t.n_processors == 12

    def test_mesh_comma_form(self):
        t = parse_topology("torus:2,5")
        assert t.n_processors == 10

    def test_all_builders(self):
        for spec, n in [
            ("ring:6", 6),
            ("linear:5", 5),
            ("complete:4", 4),
            ("star:7", 7),
            ("tree:2", 7),
            ("ccc:2", 8),
            ("butterfly:2", 12),
        ]:
            assert parse_topology(spec).n_processors == n

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown topology"):
            parse_topology("dragonfly:8")

    def test_missing_params(self):
        with pytest.raises(ValueError, match="bad topology spec"):
            parse_topology("mesh:4")


class TestParseBindings:
    def test_pairs(self):
        assert parse_bindings(["n=15", "msize=4"]) == {"n": 15, "msize": 4}

    def test_empty(self):
        assert parse_bindings([]) == {}

    def test_malformed(self):
        with pytest.raises(ValueError):
            parse_bindings(["n15"])

    def test_non_integer(self):
        with pytest.raises(ValueError):
            parse_bindings(["n=abc"])


class TestCommands:
    def test_stdlib_lists_programs(self, capsys):
        assert main(["stdlib"]) == 0
        out = capsys.readouterr().out
        assert "nbody" in out and "jacobi" in out

    def test_topologies_lists_specs(self, capsys):
        assert main(["topologies"]) == 0
        out = capsys.readouterr().out
        assert "hypercube" in out and "mesh:4x4" in out

    def test_compile_stdlib(self, capsys):
        assert main(["compile", "nbody", "--bind", "n=15"]) == 0
        out = capsys.readouterr().out
        assert "15 tasks" in out
        assert "phase expression" in out

    def test_compile_edges_flag(self, capsys):
        assert main(["compile", "pipeline", "--bind", "n=3", "--edges"]) == 0
        out = capsys.readouterr().out
        assert "forward: 0 -> 1" in out

    def test_compile_file(self, tmp_path, capsys):
        src = tmp_path / "prog.larcs"
        src.write_text(
            "algorithm tiny(n);\nnodetype t[0..n-1];\n"
            "comphase step t(i) -> t((i+1) mod n);\n"
        )
        assert main(["compile", str(src), "--bind", "n=4"]) == 0
        assert "4 tasks" in capsys.readouterr().out

    def test_compile_unknown_program(self, capsys):
        assert main(["compile", "nosuch_prog"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_map_summary(self, capsys):
        assert main(
            ["map", "nbody", "--bind", "n=15", "--topology", "hypercube:3"]
        ) == 0
        out = capsys.readouterr().out
        assert "via the 'canned' path" in out
        assert "total IPC" in out

    def test_map_report(self, capsys):
        assert main(
            ["map", "voting", "--bind", "m=3", "--topology", "hypercube:2",
             "--report"]
        ) == 0
        out = capsys.readouterr().out
        assert "OREGAMI mapping" in out
        assert "'group' path" in out

    def test_map_ascii_and_simulate(self, capsys):
        assert main(
            ["map", "jacobi", "--bind", "rows=4", "cols=4",
             "--topology", "mesh:2x2", "--ascii", "--simulate"]
        ) == 0
        out = capsys.readouterr().out
        assert "busiest links" in out
        assert "simulated completion time" in out

    def test_map_forced_strategy(self, capsys):
        assert main(
            ["map", "nbody", "--bind", "n=15", "--topology", "hypercube:3",
             "--strategy", "mwm"]
        ) == 0
        assert "'mwm' path" in capsys.readouterr().out

    def test_map_bad_topology(self, capsys):
        assert main(
            ["map", "nbody", "--bind", "n=15", "--topology", "blob:3"]
        ) == 2

    def test_map_load_bound(self, capsys):
        assert main(
            ["map", "nbody", "--bind", "n=15", "--topology", "hypercube:3",
             "--load-bound", "2"]
        ) == 0

    def test_map_timeline(self, capsys):
        assert main(
            ["map", "nbody", "--bind", "n=15", "--topology", "hypercube:3",
             "--timeline"]
        ) == 0
        out = capsys.readouterr().out
        assert "timeline of nbody" in out
        assert "simulated completion time" in out

    def test_map_save_and_analyze(self, tmp_path, capsys):
        out = tmp_path / "m.json"
        assert main(
            ["map", "nbody", "--bind", "n=15", "--topology", "hypercube:3",
             "--save", str(out)]
        ) == 0
        assert out.exists()
        capsys.readouterr()
        assert main(["analyze", str(out)]) == 0
        text = capsys.readouterr().out
        assert "OREGAMI mapping" in text

    def test_analyze_with_ascii(self, tmp_path, capsys):
        out = tmp_path / "m.json"
        main(["map", "jacobi", "--bind", "rows=4", "cols=4",
              "--topology", "mesh:2x2", "--save", str(out)])
        capsys.readouterr()
        assert main(["analyze", str(out), "--ascii"]) == 0
        assert "busiest links" in capsys.readouterr().out

    def test_map_refine_flag(self, capsys):
        assert main(
            ["map", "voting", "--bind", "m=4", "--topology", "hypercube:2",
             "--refine"]
        ) == 0
        assert "refined" in capsys.readouterr().out

    def test_map_cut_through(self, capsys):
        assert main(
            ["map", "nbody", "--bind", "n=15", "--topology", "hypercube:3",
             "--simulate", "--switching", "cut_through"]
        ) == 0
        assert "simulated completion" in capsys.readouterr().out

    def test_analyze_json(self, tmp_path, capsys):
        import json

        out = tmp_path / "m.json"
        main(["map", "jacobi", "--bind", "rows=4", "cols=4",
              "--topology", "mesh:2x2", "--save", str(out)])
        capsys.readouterr()
        assert main(["analyze", str(out), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["mapping"]["topology"] == "mesh2x2"
        assert data["overall"]["estimated_completion_time"] > 0
        assert data["load_balancing"]["max_tasks"] >= 1


class TestMachineOptions:
    def test_machine_show_generator_spec(self, capsys):
        import json

        assert main(["machine", "show", "fat_tree:2x4"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["kind"] == "fat_tree"
        assert doc["n_processors"] == 8
        assert doc["capacities"] is None
        assert any(
            c["slowdown"] != 1.0 for c in doc["link_bandwidth_classes"]
        )

    def test_machine_show_flat_spec(self, capsys):
        import json

        assert main(["machine", "show", "mesh:2x2"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["kind"] == "flat"
        assert doc["n_processors"] == 4

    def test_machine_show_file_with_capacities(self, tmp_path, capsys):
        import json

        path = tmp_path / "machine.json"
        path.write_text(json.dumps({
            "format": "oregami-machine-v1",
            "kind": "node_core_tree",
            "params": {"nodes": 2, "cores": 4},
            "capacities": {"memory": {"demand": "weight", "cap": 8.0}},
        }))
        assert main(["machine", "show", str(path)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["kind"] == "node_core_tree"
        assert doc["capacities"][0]["resource"] == "memory"
        assert doc["capacities"][0]["total"] == 64.0

    def test_machine_show_bad_spec(self, capsys):
        assert main(["machine", "show", "fat_tree:axb"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_map_with_machine_flag(self, capsys):
        assert main(
            ["map", "nbody", "--bind", "n=15",
             "--machine", "node_core_tree:2x4"]
        ) == 0
        assert "total IPC" in capsys.readouterr().out

    def test_map_with_machine_file(self, tmp_path, capsys):
        import json

        path = tmp_path / "machine.json"
        path.write_text(json.dumps({
            "format": "oregami-machine-v1",
            "kind": "topology",
            "params": {"spec": "hypercube:3"},
            "capacities": {"slots": 2},
        }))
        assert main(
            ["map", "nbody", "--bind", "n=15", "--machine", str(path)]
        ) == 0
        assert "total IPC" in capsys.readouterr().out

    def test_topology_and_machine_are_exclusive(self, capsys):
        assert main(
            ["map", "nbody", "--bind", "n=15",
             "--topology", "hypercube:3", "--machine", "fat_tree:2x4"]
        ) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_neither_topology_nor_machine_is_an_error(self, capsys):
        assert main(["map", "nbody", "--bind", "n=15"]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_run_with_machine_flag(self, capsys):
        import json

        assert main(
            ["run", "nbody", "--bind", "n=15",
             "--machine", "dragonfly:2x4", "--no-cache"]
        ) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["format"] == "oregami-pipeline-result-v1"
        assert out["mapping"]["topology"]["hierarchy"]["kind"] == "dragonfly"


class TestResilienceCommand:
    _BASE = ["resilience", "jacobi", "--bind", "rows=4", "cols=4",
             "--topology", "hypercube:4"]

    def test_repair_report(self, capsys):
        assert main(self._BASE + ["--fail-proc", "0"]) == 0
        out = capsys.readouterr().out
        assert "repair of 'jacobi'" in out
        assert "baseline completion time" in out
        assert "repaired completion time" in out

    def test_repair_json(self, capsys):
        import json

        assert main(self._BASE + ["--fail-proc", "0", "--fail-link", "1-3",
                                  "--degrade-link", "2-6:2.5", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["strategy"] == "incremental"
        assert data["faults"]["failed_procs"] == ["0"]
        assert data["repaired_time"] >= data["baseline_time"]

    def test_repair_save(self, tmp_path, capsys):
        out = tmp_path / "repaired.json"
        assert main(self._BASE + ["--fail-proc", "0", "--save", str(out)]) == 0
        from repro.io import load_mapping

        repaired = load_mapping(str(out))
        assert 0 not in repaired.assignment.values()

    def test_sweep(self, capsys):
        assert main(self._BASE + ["--sweep", "processors", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "criticality ranking" in out
        assert "16 fault(s)" in out

    def test_sweep_json(self, capsys):
        import json

        assert main(self._BASE + ["--sweep", "links", "--json",
                                  "--executor", "thread", "--workers", "2"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["distribution"]["faults"] == 32  # hypercube(4) links

    def test_faults_file(self, tmp_path, capsys):
        from repro.io import save_faultset
        from repro.resilience import FaultSet

        path = tmp_path / "faults.json"
        save_faultset(FaultSet.proc(5), str(path))
        assert main(self._BASE + ["--faults", str(path)]) == 0
        assert "procs 5" in capsys.readouterr().out

    def test_no_faults_is_an_error(self, capsys):
        assert main(self._BASE) == 2
        assert "no faults given" in capsys.readouterr().err

    def test_bad_link_spec(self, capsys):
        assert main(self._BASE + ["--fail-link", "07"]) == 2
        assert "U-V" in capsys.readouterr().err

    def test_bad_degrade_spec(self, capsys):
        assert main(self._BASE + ["--degrade-link", "0-1"]) == 2
        assert "FACTOR" in capsys.readouterr().err

    def test_disconnecting_fault_reported(self, capsys):
        assert main(
            ["resilience", "pipeline", "--bind", "n=4",
             "--topology", "linear:4", "--fail-link", "1-2"]
        ) == 2
        assert "not connected" in capsys.readouterr().err


class TestRunCommand:
    """The `repro run` subcommand: config files in, result JSON out."""

    _BASE = ["run", "nbody", "--bind", "n=15", "--topology", "hypercube:3"]

    def _result(self, capsys):
        import json

        return json.loads(capsys.readouterr().out)

    def test_default_config_full_pipeline(self, capsys):
        assert main(self._BASE + ["--no-cache"]) == 0
        out = self._result(capsys)
        assert out["format"] == "oregami-pipeline-result-v1"
        assert out["stages"] == [
            "contract", "embed", "refine", "route", "simulate", "analyze"
        ]
        assert out["sim"]["total_time"] > 0
        assert out["metrics"]["overall"]
        assert out["mapping"]["format"] == "oregami-mapping-v1"
        assert out["cache"] == {"key": None, "hit": False, "tier": None}

    def test_json_config_file(self, tmp_path, capsys):
        import json

        cfg = tmp_path / "run.json"
        cfg.write_text(json.dumps({
            "map": {"strategy": "mwm", "refine": True},
            "sim": {"hop_latency": 2.0},
            "stages": ["contract", "embed", "refine", "route", "simulate"],
        }))
        assert main(self._BASE + ["--config", str(cfg)]) == 0
        out = self._result(capsys)
        assert out["strategy"] == "mwm+refined"
        assert out["config"]["sim"]["hop_latency"] == 2.0
        assert out["metrics"] is None  # analyze stage not requested

    def test_toml_config_file(self, tmp_path, capsys):
        tomllib = pytest.importorskip("tomllib")  # Python 3.11+
        del tomllib
        cfg = tmp_path / "run.toml"
        cfg.write_text('[map]\nstrategy = "mwm"\n')
        assert main(self._BASE + ["--config", str(cfg)]) == 0
        assert self._result(capsys)["strategy"] == "mwm"

    def test_repeat_run_hits_the_cache(self, capsys):
        assert main(self._BASE) == 0
        first = self._result(capsys)
        assert first["cache"]["hit"] is False
        assert main(self._BASE) == 0
        second = self._result(capsys)
        assert second["cache"]["hit"] is True
        assert second["cache"]["key"] == first["cache"]["key"]
        assert second["mapping"] == first["mapping"]
        assert second["stage_seconds"] == first["stage_seconds"]

    def test_unknown_config_key_is_an_error(self, tmp_path, capsys):
        cfg = tmp_path / "run.json"
        cfg.write_text('{"mapp": {}}')
        assert main(self._BASE + ["--config", str(cfg)]) == 2
        assert "unknown RunConfig keys" in capsys.readouterr().err


class TestSupervisionCLI:
    """The supervised-runtime surface: exit codes, stderr hygiene, flags."""

    _BASE = ["run", "nbody", "--bind", "n=15", "--topology", "hypercube:3"]

    def _result(self, capsys):
        import json

        captured = capsys.readouterr()
        return json.loads(captured.out), captured.err

    def test_deadline_blown_exits_3_with_structured_stderr(self, capsys):
        code = main(self._BASE + ["--deadline", "0.000001", "--resume", "off"])
        captured = capsys.readouterr()
        assert code == 3
        assert captured.out == ""  # stdout stays pure JSON territory
        assert "error [TaskTimeout]" in captured.err
        assert "attempt 1: timeout" in captured.err

    def test_chaos_crash_exits_4(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", '{"crash": [[0, 1]]}')
        code = main(self._BASE + ["--retries", "0", "--resume", "off"])
        captured = capsys.readouterr()
        assert code == 4
        assert captured.out == ""
        assert "error [WorkerCrash]" in captured.err

    def test_retries_recover_a_transient_crash(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", '{"crash": [[0, 1]]}')
        assert main(self._BASE + ["--retries", "2", "--resume", "off"]) == 0
        out, _err = self._result(capsys)
        assert out["format"] == "oregami-pipeline-result-v1"
        assert out["sim"]["total_time"] > 0

    def test_negative_retries_is_invalid_input(self, capsys):
        assert main(self._BASE + ["--retries", "-1"]) == 2
        assert "--retries must be >= 0" in capsys.readouterr().err

    def test_portfolio_reports_winner_and_candidates(self, capsys):
        assert main(self._BASE + ["--portfolio", "--resume", "off"]) == 0
        out, err = self._result(capsys)
        assert out["format"] == "oregami-portfolio-result-v1"
        assert out["winner"]
        assert out["completion_time"] > 0
        assert any(c["ok"] for c in out["candidates"])
        assert err == ""

    def test_portfolio_survives_a_crashed_strategy(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", '{"crash": [[0, 1]]}')
        assert main(self._BASE + ["--portfolio", "--resume", "off"]) == 0
        out, _err = self._result(capsys)
        crashed = out["candidates"][0]
        assert not crashed["ok"]
        assert crashed["error_kind"] == "crash"
        assert out["winner"] != crashed["strategy"]

    def test_portfolio_all_strategies_failed_exits_4(self, capsys, monkeypatch):
        import json

        from repro.mapper.portfolio import DEFAULT_STRATEGIES

        plan = {"crash": [[i, 1] for i in range(len(DEFAULT_STRATEGIES))]}
        monkeypatch.setenv("REPRO_CHAOS", json.dumps(plan))
        code = main(self._BASE + ["--portfolio", "--resume", "off"])
        captured = capsys.readouterr()
        assert code == 4
        assert captured.out == ""
        assert "error [AllStrategiesFailed]" in captured.err

    def test_resume_serves_the_supervised_rerun(self, capsys):
        args = self._BASE + ["--portfolio", "--resume", "auto"]
        assert main(args) == 0
        first, _ = self._result(capsys)
        assert main(args) == 0
        second, _ = self._result(capsys)
        assert second == first

    def test_sweep_accepts_supervision_flags(self, capsys):
        assert main(
            ["resilience", "jacobi", "--bind", "rows=4", "cols=4",
             "--topology", "hypercube:3", "--sweep", "processors", "--json",
             "--deadline", "120", "--retries", "1", "--resume", "auto"]
        ) == 0
        out, _err = self._result(capsys)
        assert out["distribution"]["faults"] == 8
        assert all(row["error"] is None for row in out["ranking"])

    def test_sweep_chaos_crash_becomes_failed_row(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", '{"crash": [[2, 1]]}')
        assert main(
            ["resilience", "jacobi", "--bind", "rows=4", "cols=4",
             "--topology", "hypercube:3", "--sweep", "processors", "--json"]
        ) == 0
        out, _err = self._result(capsys)
        assert out["distribution"]["failed"] == 1
        failed = [r for r in out["ranking"] if r["status"] == "failed"]
        assert len(failed) == 1 and failed[0]["error"]

    def test_malformed_chaos_env_is_invalid_input(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "{definitely not json")
        assert main(self._BASE + ["--retries", "0", "--resume", "off"]) == 2
        assert "not valid JSON" in capsys.readouterr().err


class TestVersionAndCacheCLI:
    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as info:
            main(["--version"])
        assert info.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"

    def test_cache_stats_empty_dir(self, tmp_path, capsys):
        assert main(["cache", "stats", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries" in out and "0" in out

    def test_cache_stats_json_then_clear(self, tmp_path, capsys):
        import json

        from repro.pipeline.cache import ArtifactCache

        ArtifactCache(str(tmp_path)).put("k", {"v": 1})
        assert main(["cache", "stats", "--dir", str(tmp_path), "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 1
        assert stats["bytes"] > 0
        assert main(["cache", "clear", "--dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--dir", str(tmp_path), "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["entries"] == 0

    def test_cache_clear_preserves_foreign_files(self, tmp_path, capsys):
        from repro.pipeline.cache import ArtifactCache

        ArtifactCache(str(tmp_path)).put("k", {"v": 1})
        keep = tmp_path / "notes.txt"
        keep.write_text("precious")
        assert main(["cache", "clear", "--dir", str(tmp_path)]) == 0
        assert keep.read_text() == "precious"
        assert not list(tmp_path.glob("*.pkl"))

    def test_serve_rejects_bad_window(self, capsys):
        assert main(["serve", "--batch-window-ms", "-1"]) == 2
        assert "error" in capsys.readouterr().err.lower()


class TestOnlineCommand:
    ARGS = ["online", "jacobi", "--bind", "rows=3", "cols=3",
            "--topology", "mesh:2x3", "--events", "8", "--seed", "3",
            "--checkpoint-every", "0"]

    def test_json_report(self, capsys):
        import json

        assert main(self.ARGS + ["--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["format"] == "oregami-online-v1"
        assert doc["scenario"]["events"] == 8
        assert doc["report"]["events"] == 8
        assert doc["report"]["final_comm_cost"] > 0
        assert "trace" not in doc["report"]

    def test_human_output_mentions_counters(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "events" in out
        assert "final comm cost" in out

    def test_save_then_replay_is_bit_identical(self, tmp_path, capsys):
        import json

        path = tmp_path / "scn.json"
        assert main(self.ARGS + ["--save-scenario", str(path), "--json"]) == 0
        first = json.loads(capsys.readouterr().out)
        replay_args = [a for a in self.ARGS if a not in ("--events", "8",
                                                         "--seed", "3")]
        assert main(replay_args + ["--scenario", str(path), "--json"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["scenario"]["fingerprint"] == \
            first["scenario"]["fingerprint"]
        assert second["report"]["trace_fingerprint"] == \
            first["report"]["trace_fingerprint"]

    def test_trace_flag_includes_records(self, capsys):
        import json

        assert main(self.ARGS + ["--trace", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert len(doc["report"]["trace"]) == 8

    def test_bad_rate_spec_exits_2(self, capsys):
        assert main(self.ARGS + ["--rate", "drift"]) == 2
        assert "rate" in capsys.readouterr().err.lower()

    def test_unknown_rate_kind_exits_2(self, capsys):
        assert main(self.ARGS + ["--rate", "meteor=2"]) == 2
        assert "unknown" in capsys.readouterr().err.lower()
