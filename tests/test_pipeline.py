"""The staged pipeline: configs, stage registry, engine, artifact cache."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.arch import networks
from repro.graph import families
from repro.mapper import NotApplicableError
from repro.pipeline import (
    AnalyzeConfig,
    ArtifactCache,
    MapConfig,
    RunConfig,
    SimConfig,
    all_stages,
    default_portfolio,
    get_stage,
    get_strategy,
    run_pipeline,
    stage_names,
    strategy_names,
)
from repro.resilience import FaultSet
from repro.sim import CostModel

SRC = str(Path(__file__).resolve().parent.parent / "src")


# ----------------------------------------------------------------------
# configs
# ----------------------------------------------------------------------

def test_runconfig_roundtrip():
    config = RunConfig(
        map=MapConfig(strategy="mwm", load_bound=3, refine=True),
        sim=SimConfig(hop_latency=2.0, byte_time=0.5, switching="cut_through"),
        analyze=AnalyzeConfig(kernel="reference"),
        stages=("contract", "embed", "route"),
        cache=False,
    )
    assert RunConfig.from_dict(config.to_dict()) == config
    assert RunConfig.from_dict(json.loads(json.dumps(config.to_dict()))) == config
    assert RunConfig.from_dict({}) == RunConfig()


def test_configs_hashable():
    assert len({RunConfig(), RunConfig(), RunConfig(cache=False)}) == 2
    assert MapConfig() == MapConfig(strategy="auto")


def test_config_unknown_keys_raise():
    with pytest.raises(ValueError, match="unknown RunConfig keys"):
        RunConfig.from_dict({"mapp": {}})
    with pytest.raises(ValueError, match="unknown MapConfig keys"):
        RunConfig.from_dict({"map": {"strat": "mwm"}})
    with pytest.raises(ValueError, match="unknown SimConfig keys"):
        SimConfig.from_dict({"hop": 1})


def test_config_validation():
    with pytest.raises(ValueError):
        MapConfig(load_bound=0)
    with pytest.raises(ValueError):
        SimConfig(switching="wormhole")
    with pytest.raises(ValueError):
        SimConfig(hop_latency=-1.0)
    with pytest.raises(ValueError):
        AnalyzeConfig(kernel="gpu")
    with pytest.raises(ValueError):
        RunConfig(stages=())


def test_simconfig_model_roundtrip():
    model = CostModel(hop_latency=2.0, byte_time=0.25, exec_time=0.5,
                      switching="cut_through")
    assert SimConfig.from_model(model).cost_model() == model


# ----------------------------------------------------------------------
# registries
# ----------------------------------------------------------------------

def test_stage_registry_contents():
    assert stage_names() == (
        "contract", "embed", "refine", "route", "simulate", "analyze"
    )
    assert all(s.description for s in all_stages())
    with pytest.raises(ValueError, match="unknown pipeline stage"):
        get_stage("compile")


def test_strategy_registry_is_single_source_of_truth():
    from repro.mapper.portfolio import DEFAULT_STRATEGIES

    assert strategy_names() == ("canned", "group", "mwm", "multilevel")
    # multilevel is opt-in: by name only, never via auto or the portfolio.
    assert default_portfolio() == ("canned", "group", "mwm", "mwm+refine")
    # The portfolio's strategy list is derived from the registry, not
    # hard-coded in a second place.
    assert DEFAULT_STRATEGIES == default_portfolio()
    assert get_strategy("mwm").refinable
    assert not get_strategy("multilevel").auto
    assert not get_strategy("multilevel").portfolio
    with pytest.raises(ValueError, match="unknown strategy"):
        get_strategy("anneal")


# ----------------------------------------------------------------------
# engine
# ----------------------------------------------------------------------

def test_run_pipeline_full_run():
    result = run_pipeline(
        families.ring(16), networks.hypercube(3), RunConfig(cache=False)
    )
    assert result.strategy == "canned"
    assert result.stages == (
        "contract", "embed", "refine", "route", "simulate", "analyze"
    )
    assert set(result.stage_seconds) == set(result.stages)
    assert result.sim.total_time > 0
    assert result.completion_time == result.sim.total_time
    assert result.metrics.estimated_completion_time == result.sim.total_time
    assert result.routing_rounds == result.mapping.routing_rounds
    assert result.routing_rounds  # per-phase rounds, non-empty
    assert not result.cache_hit


def test_run_pipeline_partial_stages():
    result = run_pipeline(
        families.ring(16),
        networks.hypercube(3),
        RunConfig(stages=("contract", "embed"), cache=False),
    )
    assert result.mapping.routes == {}
    assert result.sim is None and result.metrics is None
    assert result.completion_time is None


def test_run_pipeline_rejects_ill_ordered_stages():
    with pytest.raises(ValueError, match="requires"):
        run_pipeline(
            families.ring(16),
            networks.hypercube(3),
            RunConfig(stages=("route", "contract"), cache=False),
        )
    with pytest.raises(ValueError, match="never built a mapping"):
        run_pipeline(
            families.ring(16),
            networks.hypercube(3),
            RunConfig(stages=("contract",), cache=False),
        )


def test_run_pipeline_forced_strategy_propagates_not_applicable():
    from repro.graph.taskgraph import TaskGraph

    tg = TaskGraph("irregular")  # no family -> no canned entry
    for i in range(5):
        tg.add_node(i)
    phase = tg.add_comm_phase("p")
    for src, dst in [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]:
        phase.add(src, dst, 1.0)
    with pytest.raises(NotApplicableError):
        run_pipeline(
            tg,
            networks.hypercube(3),
            RunConfig(map=MapConfig(strategy="canned"), cache=False),
        )


def test_run_pipeline_with_faults_targets_degraded_machine():
    faults = FaultSet.proc(5)
    result = run_pipeline(
        families.ring(16),
        networks.hypercube(3),
        RunConfig(stages=("contract", "embed", "refine", "route"), cache=False),
        faults=faults,
    )
    assert 5 not in result.mapping.used_procs()
    assert result.mapping.topology.n_processors == 7


# ----------------------------------------------------------------------
# artifact cache
# ----------------------------------------------------------------------

def test_cache_memory_and_disk_tiers(tmp_path):
    cache = ArtifactCache(str(tmp_path / "store"))
    tg, topo = families.ring(16), networks.hypercube(3)
    config = RunConfig()

    cold = run_pipeline(tg, topo, config, cache=cache)
    assert not cold.cache_hit

    warm = run_pipeline(tg, topo, config, cache=cache)
    assert warm.cache_hit and warm.cache_tier == "memory"
    assert warm.mapping.assignment == cold.mapping.assignment
    assert warm.sim.total_time == cold.sim.total_time
    assert warm.cache_key == cold.cache_key

    # Evict the memory tier: the disk tier serves, then re-promotes.
    cache.clear()
    disk = run_pipeline(tg, topo, config, cache=cache)
    assert disk.cache_hit and disk.cache_tier == "disk"
    assert disk.mapping.assignment == cold.mapping.assignment
    again = run_pipeline(tg, topo, config, cache=cache)
    assert again.cache_tier == "memory"


def test_cache_distinguishes_inputs(tmp_path):
    cache = ArtifactCache(str(tmp_path / "store"))
    base = run_pipeline(
        families.ring(16), networks.hypercube(3), RunConfig(), cache=cache
    )
    for tg, topo, config, faults in [
        (families.ring(15), networks.hypercube(3), RunConfig(), None),
        (families.ring(16), networks.mesh(2, 4), RunConfig(), None),
        (families.ring(16), networks.hypercube(3),
         RunConfig(map=MapConfig(strategy="mwm")), None),
        (families.ring(16), networks.hypercube(3), RunConfig(),
         FaultSet.proc(0)),
    ]:
        result = run_pipeline(tg, topo, config, faults=faults, cache=cache)
        assert not result.cache_hit
        assert result.cache_key != base.cache_key


def test_cache_hit_returns_mutation_safe_mapping(tmp_path):
    cache = ArtifactCache(str(tmp_path / "store"))
    tg, topo = families.ring(16), networks.hypercube(3)
    run_pipeline(tg, topo, RunConfig(), cache=cache)

    first = run_pipeline(tg, topo, RunConfig(), cache=cache)
    first.mapping.provenance += "+vandalised"
    first.mapping.assignment[0] = 999

    second = run_pipeline(tg, topo, RunConfig(), cache=cache)
    assert second.cache_hit
    assert second.mapping.provenance == "canned"
    assert second.mapping.assignment[0] != 999


def test_cache_survives_process_restart(tmp_path):
    """A second *process* gets a disk hit for work done by the first."""
    store = str(tmp_path / "store")
    script = (
        "import json\n"
        "from repro.arch import networks\n"
        "from repro.graph import families\n"
        "from repro.pipeline import ArtifactCache, RunConfig, run_pipeline\n"
        f"cache = ArtifactCache({store!r})\n"
        "r = run_pipeline(families.ring(16), networks.hypercube(3),"
        " RunConfig(), cache=cache)\n"
        "print(json.dumps({'hit': r.cache_hit, 'tier': r.cache_tier,"
        " 'time': r.sim.total_time}))\n"
    )

    def run(seed):
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": SRC, "PYTHONHASHSEED": seed,
                 "PATH": "/usr/bin:/bin"},
        )
        return json.loads(proc.stdout)

    first = run("11")
    second = run("7777")  # different process AND different hash seed
    assert first == {"hit": False, "tier": None, "time": first["time"]}
    assert second == {"hit": True, "tier": "disk", "time": first["time"]}


def test_cache_corrupted_entry_is_a_miss(tmp_path):
    cache = ArtifactCache(str(tmp_path / "store"))
    tg, topo = families.ring(16), networks.hypercube(3)
    cold = run_pipeline(tg, topo, RunConfig(), cache=cache)
    cache.clear()  # drop memory so the disk file is the only copy
    for entry in (tmp_path / "store").glob("*.pkl"):
        entry.write_bytes(b"not a pickle")
    recomputed = run_pipeline(tg, topo, RunConfig(), cache=cache)
    assert not recomputed.cache_hit
    assert recomputed.mapping.assignment == cold.mapping.assignment


def test_cache_lru_eviction():
    cache = ArtifactCache(capacity=2)  # memory-only
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == (1, "memory")  # refresh a
    cache.put("c", 3)  # evicts b
    assert cache.get("b") is None
    assert cache.get("a") == (1, "memory")
    assert cache.get("c") == (3, "memory")


def test_cache_env_knobs(tmp_path, monkeypatch):
    from repro.pipeline import cache_dir, default_cache, reset_default_cache

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "knob"))
    reset_default_cache()
    assert cache_dir() == str(tmp_path / "knob")
    assert default_cache().directory == str(tmp_path / "knob")

    monkeypatch.setenv("REPRO_CACHE", "off")
    reset_default_cache()
    assert default_cache() is None
    # Disabled default cache -> every run recomputes.
    r1 = run_pipeline(families.ring(16), networks.hypercube(3), RunConfig())
    r2 = run_pipeline(families.ring(16), networks.hypercube(3), RunConfig())
    assert not r1.cache_hit and not r2.cache_hit
    assert r1.cache_key is None

    reset_default_cache()


def test_default_cache_used_between_runs():
    r1 = run_pipeline(families.ring(16), networks.hypercube(3), RunConfig())
    r2 = run_pipeline(families.ring(16), networks.hypercube(3), RunConfig())
    assert not r1.cache_hit and r2.cache_hit
    # config.cache=False opts a run out without touching the store.
    r3 = run_pipeline(
        families.ring(16), networks.hypercube(3), RunConfig(cache=False)
    )
    assert not r3.cache_hit


def test_result_to_dict_is_json_compatible():
    result = run_pipeline(
        families.ring(16), networks.hypercube(3), RunConfig(cache=False)
    )
    payload = json.loads(json.dumps(result.to_dict()))
    assert payload["format"] == "oregami-pipeline-result-v1"
    assert payload["strategy"] == "canned"
    assert payload["sim"]["total_time"] == result.sim.total_time
    assert payload["mapping"]["format"] == "oregami-mapping-v1"
    assert payload["config"]["map"]["strategy"] == "auto"
    assert set(payload["stage_seconds"]) == set(result.stages)
