"""Online events and seeded scenario generation (repro.online)."""

import json

import pytest

from repro.arch import networks
from repro.larcs import stdlib
from repro.online import (
    DEFAULT_RATES,
    Arrival,
    Departure,
    Drift,
    Fault,
    Recovery,
    Scenario,
    event_fingerprint,
    event_from_dict,
    event_to_dict,
    generate_scenario,
)
from repro.resilience import FaultSet


def _instance():
    return stdlib.load("jacobi", rows=4, cols=4), networks.mesh(3, 3)


class TestEvents:
    def test_arrival_round_trip(self):
        ev = Arrival(
            task=("dyn", 0),
            weight=2.0,
            edges=(("ring", 3, ("dyn", 0), 1.5),),
        )
        back = event_from_dict(event_to_dict(ev))
        assert back == ev
        assert event_fingerprint(back) == event_fingerprint(ev)

    def test_arrival_edge_must_touch_task(self):
        with pytest.raises(ValueError, match="arriving task"):
            Arrival(task="x", edges=(("p", "a", "b", 1.0),))

    def test_arrival_negative_volume_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            Arrival(task="x", edges=(("p", "a", "x", -1.0),))

    def test_drift_round_trip(self):
        ev = Drift(phase="ring", updates=((0, 1, 4.0), (1, 2, 0.5)))
        assert event_from_dict(event_to_dict(ev)) == ev

    def test_fault_recovery_round_trip(self):
        fs = FaultSet(failed_procs=[1], degraded_links=[((2, 5), 2.0)])
        for cls in (Fault, Recovery):
            ev = cls(faults=fs)
            back = event_from_dict(event_to_dict(ev))
            assert back == ev
            assert back.faults == fs

    def test_departure_round_trip_tuple_label(self):
        ev = Departure(task=("dyn", 7))
        assert event_from_dict(event_to_dict(ev)) == ev

    def test_json_serializable(self):
        ev = Arrival(task=("dyn", 1), edges=(("ring", 0, ("dyn", 1), 1.0),))
        text = json.dumps(event_to_dict(ev))
        assert event_from_dict(json.loads(text)) == ev

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            event_from_dict({"kind": "meteor"})
        with pytest.raises(ValueError, match="kind"):
            event_from_dict({"task": "x"})

    def test_fingerprints_distinguish_fault_from_recovery(self):
        fs = FaultSet(failed_procs=[1])
        assert event_fingerprint(Fault(faults=fs)) != event_fingerprint(
            Recovery(faults=fs)
        )


class TestScenario:
    def test_round_trip(self):
        tg, topo = _instance()
        scn = generate_scenario(tg, topo, seed=5, n_events=30)
        back = Scenario.from_dict(json.loads(json.dumps(scn.to_dict())))
        assert back.fingerprint() == scn.fingerprint()
        assert len(back) == 30

    def test_seed_determinism(self):
        tg, topo = _instance()
        a = generate_scenario(tg, topo, seed=9, n_events=40)
        b = generate_scenario(tg, topo, seed=9, n_events=40)
        assert a.fingerprint() == b.fingerprint()
        assert a.events == b.events

    def test_seeds_differ(self):
        tg, topo = _instance()
        a = generate_scenario(tg, topo, seed=1, n_events=40)
        b = generate_scenario(tg, topo, seed=2, n_events=40)
        assert a.fingerprint() != b.fingerprint()

    def test_exact_event_count(self):
        tg, topo = _instance()
        for n in (0, 1, 7, 33):
            assert len(generate_scenario(tg, topo, seed=0, n_events=n)) == n

    def test_unknown_rate_key_rejected(self):
        tg, topo = _instance()
        with pytest.raises(ValueError, match="unknown rate keys"):
            generate_scenario(tg, topo, rates={"earthquake": 1.0})

    def test_all_zero_rates_rejected(self):
        tg, topo = _instance()
        with pytest.raises(ValueError, match="positive"):
            generate_scenario(
                tg, topo, rates={k: 0.0 for k in DEFAULT_RATES}
            )

    def test_zero_rate_disables_kind(self):
        tg, topo = _instance()
        scn = generate_scenario(
            tg, topo, seed=3, n_events=60,
            rates={"fault": 0.0, "flap": 0.0, "recovery": 0.0},
        )
        assert not any(isinstance(e, (Fault, Recovery)) for e in scn.events)

    def test_departures_only_name_spawned_tasks(self):
        tg, topo = _instance()
        scn = generate_scenario(tg, topo, seed=4, n_events=80)
        spawned = set()
        for ev in scn.events:
            if isinstance(ev, Arrival):
                spawned.add(ev.task)
            elif isinstance(ev, Departure):
                assert ev.task in spawned
                spawned.discard(ev.task)

    def test_faults_keep_machine_connected(self):
        tg, topo = _instance()
        scn = generate_scenario(
            tg, topo, seed=6, n_events=80, rates={"fault": 5.0, "flap": 3.0}
        )
        active = FaultSet()
        for ev in scn.events:
            if isinstance(ev, Fault):
                active = active.union(ev.faults)
                topo.degrade(active)  # raises if disconnected/infeasible
            elif isinstance(ev, Recovery):
                active = active.difference(ev.faults)

    def test_flap_recovers(self):
        # With flaps enabled, every degrade that a flap starts is lifted
        # by a matching recovery within the stream (when room remains).
        tg, topo = _instance()
        scn = generate_scenario(
            tg, topo, seed=2, n_events=60,
            rates={"flap": 4.0, "fault": 0.0, "recovery": 0.0,
                   "departure": 0.0, "drift": 0.0, "burst": 0.0},
        )
        degrades = [
            e for e in scn.events
            if isinstance(e, Fault) and e.faults.degraded_links
        ]
        recoveries = [e for e in scn.events if isinstance(e, Recovery)]
        assert degrades, "flap rate 4.0 produced no degrades"
        # All but the tail few (cut off by n_events) recover.
        assert len(recoveries) >= len(degrades) - 3

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError, match="not a scenario"):
            Scenario.from_dict({"format": "nope"})

    def test_negative_n_events_rejected(self):
        tg, topo = _instance()
        with pytest.raises(ValueError, match="n_events"):
            generate_scenario(tg, topo, n_events=-1)
