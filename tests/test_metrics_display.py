"""Tests for the ASCII mapping display (repro.metrics.display)."""

import pytest

from repro.arch import networks
from repro.graph import families
from repro.larcs import stdlib
from repro.mapper import map_computation
from repro.metrics.display import (
    render_link_traffic,
    render_mapping_ascii,
    render_timeline,
)
from repro.sim import CostModel, simulate


class TestRenderMappingAscii:
    def test_mesh_grid(self):
        m = map_computation(stdlib.load("jacobi", rows=4, cols=4), networks.mesh(2, 2))
        art = render_mapping_ascii(m)
        assert art.count("--") >= 2  # horizontal links drawn
        assert "|" in art  # vertical links drawn
        assert "0:" in art and "3:" in art

    def test_torus_notes_wraparound(self):
        m = map_computation(stdlib.load("cannon", q=2), networks.torus(2, 2))
        art = render_mapping_ascii(m)
        assert "wrap" in art

    def test_ring_chain(self):
        m = map_computation(families.ring(6), networks.ring(6))
        art = render_mapping_ascii(m)
        assert "wraps to" in art
        assert art.count("--") >= 5

    def test_linear_chain_open(self):
        m = map_computation(stdlib.load("pipeline", n=4), networks.linear(4))
        art = render_mapping_ascii(m)
        assert "wraps" not in art

    def test_hypercube_adjacency(self):
        m = map_computation(families.nbody(15), networks.hypercube(3))
        art = render_mapping_ascii(m)
        # Adjacency fallback: one line per processor with neighbours.
        assert art.count("->") == 8

    def test_empty_processor_shown_as_dash(self):
        m = map_computation(families.ring(2), networks.ring(4), strategy="mwm")
        art = render_mapping_ascii(m)
        assert ":-" in art

    def test_header_mentions_provenance(self):
        m = map_computation(families.ring(8), networks.hypercube(3))
        assert "(canned)" in render_mapping_ascii(m)


class TestRenderLinkTraffic:
    def test_bars_and_phases(self):
        m = map_computation(families.nbody(15), networks.hypercube(3))
        text = render_link_traffic(m)
        assert "busiest links" in text
        assert "#" in text
        assert "chordal=" in text or "ring=" in text

    def test_top_limits_rows(self):
        m = map_computation(families.nbody(15), networks.hypercube(3))
        text = render_link_traffic(m, top=3)
        assert text.count("link ") == 3

    def test_no_traffic(self):
        m = map_computation(families.ring(4), networks.ring(1))
        assert render_link_traffic(m) == "no inter-processor traffic"


class TestRenderTimeline:
    def make(self):
        m = map_computation(families.nbody(15), networks.hypercube(3))
        return m, simulate(m, CostModel(exec_time=0.1))

    def test_rows_and_bars(self):
        m, sim = self.make()
        text = render_timeline(m, sim)
        assert "timeline of nbody15" in text
        assert "ring" in text and "chordal" in text
        assert "=" in text

    def test_folding_repeated_steps(self):
        # A phase expression that repeats one identical step folds into a
        # single row with a repeat count.
        from repro.graph.phase_expr import PhaseRef, Rep

        tg = families.complete(4)
        tg.phase_expr = Rep(PhaseRef("all"), 5)
        m = map_computation(tg, networks.complete(4))
        sim = simulate(m, CostModel())
        text = render_timeline(m, sim)
        assert "x5" in text
        assert text.count("all") == 1

    def test_max_rows_truncation(self):
        m, sim = self.make()
        text = render_timeline(m, sim, max_rows=1)
        assert "more step groups" in text

    def test_mismatched_sim_rejected(self):
        m, sim = self.make()
        other = map_computation(families.ring(4), networks.ring(4))
        with pytest.raises(ValueError):
            render_timeline(other, sim)
