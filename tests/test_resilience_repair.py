"""Tests for incremental mapping repair (repro.resilience.repair)."""

import pytest

from repro.arch import DisconnectedTopologyError, networks
from repro.graph import families
from repro.larcs import stdlib
from repro.mapper import map_computation
from repro.resilience import FaultSet, repair_mapping
from repro.sim import simulate


def jacobi_case(dim=4):
    tg = stdlib.load("jacobi", rows=4, cols=4, msize=2)
    topo = networks.hypercube(dim)
    return tg, topo, map_computation(tg, topo)


def check_repair(report, faults):
    """Invariants every successful repair must satisfy."""
    m = report.mapping
    m.validate(require_routes=True)
    assert not (set(m.assignment.values()) & set(faults.failed_procs))
    dead = {tuple(sorted(l, key=repr)) for l in faults.dead_links_on(report.degraded)}
    # The degraded topology no longer has the dead links at all, so any
    # valid route avoids them; assert it explicitly anyway.
    for route in m.routes.values():
        for a, b in zip(route, route[1:]):
            assert tuple(sorted((a, b), key=repr)) not in dead


class TestIncrementalRepair:
    def test_single_proc_failure(self):
        tg, topo, m = jacobi_case()
        faults = FaultSet.proc(0)
        report = repair_mapping(tg, m, topo, faults)
        check_repair(report, faults)
        assert report.strategy == "incremental"
        assert report.n_moved == len(m.tasks_on(0))
        # Every move is off the dead processor.
        assert all(old == 0 for old, _new in report.moved_tasks.values())

    @pytest.mark.parametrize("n_failed", [1, 2, 3, 4])
    def test_multi_proc_failures(self, n_failed):
        tg, topo, m = jacobi_case()
        faults = FaultSet(failed_procs=list(range(n_failed)))
        report = repair_mapping(tg, m, topo, faults)
        check_repair(report, faults)

    def test_untouched_routes_kept_verbatim(self):
        tg, topo, m = jacobi_case()
        report = repair_mapping(tg, m, topo, FaultSet.proc(0))
        for key, route in report.mapping.routes.items():
            if key not in report.rerouted:
                assert route == m.routes[key]
        assert report.kept_routes == len(m.routes) - report.n_rerouted

    def test_link_failure_moves_no_tasks(self):
        tg, topo, m = jacobi_case()
        faults = FaultSet.link(0, 1)
        report = repair_mapping(tg, m, topo, faults)
        check_repair(report, faults)
        assert report.n_moved == 0
        assert report.migration_cost == 0.0

    def test_degraded_link_reroutes_without_moves(self):
        tg, topo, m = jacobi_case()
        # Find a link some route actually crosses.
        route = next(r for r in m.routes.values() if len(r) > 1)
        u, v = route[0], route[1]
        faults = FaultSet(degraded_links=[((u, v), 10.0)])
        report = repair_mapping(tg, m, topo, faults)
        check_repair(report, faults)
        assert report.n_moved == 0
        assert report.n_rerouted > 0
        # The degraded machine keeps the link, just slower.
        assert report.degraded.has_link(u, v)
        lid = report.degraded.link_id(u, v)
        assert report.degraded.link_slowdowns[lid] == 10.0

    def test_migration_cost_positive_when_tasks_move(self):
        tg, topo, m = jacobi_case()
        report = repair_mapping(tg, m, topo, FaultSet.proc(0), state_volume=4.0)
        assert report.migration_cost > 0
        # More state to carry costs strictly more (hop latency keeps the
        # charge affine rather than proportional in the volume).
        half = repair_mapping(tg, m, topo, FaultSet.proc(0), state_volume=2.0)
        assert half.migration_cost < report.migration_cost

    def test_empty_faults_noop(self):
        tg, topo, m = jacobi_case()
        report = repair_mapping(tg, m, topo, FaultSet())
        assert report.strategy == "noop"
        assert report.mapping.assignment == m.assignment
        assert report.mapping.routes == m.routes
        assert report.n_moved == 0 and report.n_rerouted == 0
        assert report.kept_routes == len(m.routes)

    def test_deterministic(self):
        tg, topo, m = jacobi_case()
        faults = FaultSet(failed_procs=[0, 5], failed_links=[(1, 3)])
        a = repair_mapping(tg, m, topo, faults)
        b = repair_mapping(tg, m, topo, faults)
        assert a.mapping.assignment == b.mapping.assignment
        assert a.mapping.routes == b.mapping.routes
        assert a.moved_tasks == b.moved_tasks

    def test_repaired_mapping_simulates(self):
        tg, topo, m = jacobi_case()
        report = repair_mapping(tg, m, topo, FaultSet.proc(0))
        result = simulate(report.mapping)
        assert result.total_time > 0

    def test_nearest_spare_preferred(self):
        # One task per processor on a linear array: the task on the dead
        # end must land on its neighbour, the closest surviving spare.
        tg = families.linear(3)
        topo = networks.linear(4)
        m = map_computation(tg, topo)
        dead = m.assignment[0]
        report = repair_mapping(tg, m, topo, FaultSet.proc(dead))
        (old, new), = set(report.moved_tasks.values())
        assert old == dead
        assert topo.distance(old, new) == min(
            topo.distance(old, p) for p in report.degraded.processors
        )


class TestModesAndFallback:
    def test_full_mode(self):
        tg, topo, m = jacobi_case()
        faults = FaultSet.proc(0)
        report = repair_mapping(tg, m, topo, faults, mode="full")
        check_repair(report, faults)
        assert report.strategy == "full"
        assert report.mapping.provenance.endswith("+full-repair")

    def test_unknown_mode_rejected(self):
        tg, topo, m = jacobi_case()
        with pytest.raises(ValueError, match="unknown mode"):
            repair_mapping(tg, m, topo, FaultSet.proc(0), mode="magic")

    def test_disconnecting_fault_raises(self):
        tg = families.linear(3)
        topo = networks.linear(4)
        m = map_computation(tg, topo)
        with pytest.raises(DisconnectedTopologyError):
            repair_mapping(tg, m, topo, FaultSet.link(1, 2))

    def test_severe_faults_survived(self):
        # 16 tasks, 3 of 4 ring processors dead: everything piles onto the
        # one survivor and the repair still validates.
        tg = families.mesh(4, 4)
        topo = networks.ring(4)
        m = map_computation(tg, topo)
        faults = FaultSet(failed_procs=[0, 1, 2])
        report = repair_mapping(tg, m, topo, faults)
        check_repair(report, faults)
        assert set(report.mapping.assignment.values()) == {3}

    def test_auto_falls_back_when_incremental_breaks(self, monkeypatch):
        import repro.resilience.repair as repair_mod

        def boom(*_args, **_kwargs):
            raise RuntimeError("incremental path exploded")

        monkeypatch.setattr(repair_mod, "_repair_incremental", boom)
        tg, topo, m = jacobi_case()
        faults = FaultSet.proc(0)
        # Forced incremental propagates the error...
        with pytest.raises(RuntimeError, match="exploded"):
            repair_mod.repair_mapping(tg, m, topo, faults, mode="incremental")
        # ...auto falls back to the full remap and says why.
        report = repair_mod.repair_mapping(tg, m, topo, faults, mode="auto")
        check_repair(report, faults)
        assert report.strategy == "full"
        assert "exploded" in report.fallback_reason
