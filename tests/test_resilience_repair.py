"""Tests for incremental mapping repair (repro.resilience.repair)."""

import pytest

from repro.arch import DisconnectedTopologyError, networks
from repro.graph import families
from repro.larcs import stdlib
from repro.mapper import map_computation
from repro.resilience import FaultSet, repair_mapping
from repro.sim import simulate


def jacobi_case(dim=4):
    tg = stdlib.load("jacobi", rows=4, cols=4, msize=2)
    topo = networks.hypercube(dim)
    return tg, topo, map_computation(tg, topo)


def check_repair(report, faults):
    """Invariants every successful repair must satisfy."""
    m = report.mapping
    m.validate(require_routes=True)
    assert not (set(m.assignment.values()) & set(faults.failed_procs))
    dead = {tuple(sorted(l, key=repr)) for l in faults.dead_links_on(report.degraded)}
    # The degraded topology no longer has the dead links at all, so any
    # valid route avoids them; assert it explicitly anyway.
    for route in m.routes.values():
        for a, b in zip(route, route[1:]):
            assert tuple(sorted((a, b), key=repr)) not in dead


class TestIncrementalRepair:
    def test_single_proc_failure(self):
        tg, topo, m = jacobi_case()
        faults = FaultSet.proc(0)
        report = repair_mapping(tg, m, topo, faults)
        check_repair(report, faults)
        assert report.strategy == "incremental"
        assert report.n_moved == len(m.tasks_on(0))
        # Every move is off the dead processor.
        assert all(old == 0 for old, _new in report.moved_tasks.values())

    @pytest.mark.parametrize("n_failed", [1, 2, 3, 4])
    def test_multi_proc_failures(self, n_failed):
        tg, topo, m = jacobi_case()
        faults = FaultSet(failed_procs=list(range(n_failed)))
        report = repair_mapping(tg, m, topo, faults)
        check_repair(report, faults)

    def test_untouched_routes_kept_verbatim(self):
        tg, topo, m = jacobi_case()
        report = repair_mapping(tg, m, topo, FaultSet.proc(0))
        for key, route in report.mapping.routes.items():
            if key not in report.rerouted:
                assert route == m.routes[key]
        assert report.kept_routes == len(m.routes) - report.n_rerouted

    def test_link_failure_moves_no_tasks(self):
        tg, topo, m = jacobi_case()
        faults = FaultSet.link(0, 1)
        report = repair_mapping(tg, m, topo, faults)
        check_repair(report, faults)
        assert report.n_moved == 0
        assert report.migration_cost == 0.0

    def test_degraded_link_reroutes_without_moves(self):
        tg, topo, m = jacobi_case()
        # Find a link some route actually crosses.
        route = next(r for r in m.routes.values() if len(r) > 1)
        u, v = route[0], route[1]
        faults = FaultSet(degraded_links=[((u, v), 10.0)])
        report = repair_mapping(tg, m, topo, faults)
        check_repair(report, faults)
        assert report.n_moved == 0
        assert report.n_rerouted > 0
        # The degraded machine keeps the link, just slower.
        assert report.degraded.has_link(u, v)
        lid = report.degraded.link_id(u, v)
        assert report.degraded.link_slowdowns[lid] == 10.0

    def test_migration_cost_positive_when_tasks_move(self):
        tg, topo, m = jacobi_case()
        report = repair_mapping(tg, m, topo, FaultSet.proc(0), state_volume=4.0)
        assert report.migration_cost > 0
        # More state to carry costs strictly more (hop latency keeps the
        # charge affine rather than proportional in the volume).
        half = repair_mapping(tg, m, topo, FaultSet.proc(0), state_volume=2.0)
        assert half.migration_cost < report.migration_cost

    def test_empty_faults_noop(self):
        tg, topo, m = jacobi_case()
        report = repair_mapping(tg, m, topo, FaultSet())
        assert report.strategy == "noop"
        assert report.mapping.assignment == m.assignment
        assert report.mapping.routes == m.routes
        assert report.n_moved == 0 and report.n_rerouted == 0
        assert report.kept_routes == len(m.routes)

    def test_deterministic(self):
        tg, topo, m = jacobi_case()
        faults = FaultSet(failed_procs=[0, 5], failed_links=[(1, 3)])
        a = repair_mapping(tg, m, topo, faults)
        b = repair_mapping(tg, m, topo, faults)
        assert a.mapping.assignment == b.mapping.assignment
        assert a.mapping.routes == b.mapping.routes
        assert a.moved_tasks == b.moved_tasks

    def test_repaired_mapping_simulates(self):
        tg, topo, m = jacobi_case()
        report = repair_mapping(tg, m, topo, FaultSet.proc(0))
        result = simulate(report.mapping)
        assert result.total_time > 0

    def test_nearest_spare_preferred(self):
        # One task per processor on a linear array: the task on the dead
        # end must land on its neighbour, the closest surviving spare.
        tg = families.linear(3)
        topo = networks.linear(4)
        m = map_computation(tg, topo)
        dead = m.assignment[0]
        report = repair_mapping(tg, m, topo, FaultSet.proc(dead))
        (old, new), = set(report.moved_tasks.values())
        assert old == dead
        assert topo.distance(old, new) == min(
            topo.distance(old, p) for p in report.degraded.processors
        )


class TestModesAndFallback:
    def test_full_mode(self):
        tg, topo, m = jacobi_case()
        faults = FaultSet.proc(0)
        report = repair_mapping(tg, m, topo, faults, mode="full")
        check_repair(report, faults)
        assert report.strategy == "full"
        assert report.mapping.provenance.endswith("+full-repair")

    def test_unknown_mode_rejected(self):
        tg, topo, m = jacobi_case()
        with pytest.raises(ValueError, match="unknown mode"):
            repair_mapping(tg, m, topo, FaultSet.proc(0), mode="magic")

    def test_disconnecting_fault_raises(self):
        tg = families.linear(3)
        topo = networks.linear(4)
        m = map_computation(tg, topo)
        with pytest.raises(DisconnectedTopologyError):
            repair_mapping(tg, m, topo, FaultSet.link(1, 2))

    def test_severe_faults_survived(self):
        # 16 tasks, 3 of 4 ring processors dead: everything piles onto the
        # one survivor and the repair still validates.
        tg = families.mesh(4, 4)
        topo = networks.ring(4)
        m = map_computation(tg, topo)
        faults = FaultSet(failed_procs=[0, 1, 2])
        report = repair_mapping(tg, m, topo, faults)
        check_repair(report, faults)
        assert set(report.mapping.assignment.values()) == {3}

    def test_auto_falls_back_when_incremental_breaks(self, monkeypatch):
        import repro.resilience.repair as repair_mod

        def boom(*_args, **_kwargs):
            raise RuntimeError("incremental path exploded")

        monkeypatch.setattr(repair_mod, "_repair_incremental", boom)
        tg, topo, m = jacobi_case()
        faults = FaultSet.proc(0)
        # Forced incremental propagates the error...
        with pytest.raises(RuntimeError, match="exploded"):
            repair_mod.repair_mapping(tg, m, topo, faults, mode="incremental")
        # ...auto falls back to the full remap and says why.
        report = repair_mod.repair_mapping(tg, m, topo, faults, mode="auto")
        check_repair(report, faults)
        assert report.strategy == "full"
        assert "exploded" in report.fallback_reason


class TestCombinedFaultsWithCapacities:
    """PR 10 satellite: simultaneous proc+link faults on machines with
    partial per-resource headroom, and the structured capacity_overflow
    payload end to end."""

    @staticmethod
    def _machine(base, spec):
        from repro.arch.capacity import Capacities
        from repro.arch.hierarchy import with_capacities

        return with_capacities(
            base, Capacities.from_spec(spec, base.processors)
        )

    @staticmethod
    def _weighted_ring(weights):
        from repro.graph.taskgraph import TaskGraph

        tg = TaskGraph("combo-ring")
        for i, w in enumerate(weights):
            tg.add_node(i, w)
        phase = tg.add_comm_phase("ring")
        for i in range(len(weights)):
            phase.add(i, (i + 1) % len(weights), 1.0)
        tg.add_exec_phase("work", 1.0)
        return tg

    def test_combined_proc_and_link_fault_repair_is_feasible(self):
        # Survivors have slots headroom everywhere but mem headroom only
        # on some; the repaired mapping must respect both vectors while
        # also rerouting around the dead link.
        tg = self._weighted_ring([2.0, 2.0, 1.0, 1.0, 1.0, 1.0])
        topo = self._machine(
            networks.mesh(2, 3),
            {"slots": {"demand": "unit", "cap": 3.0},
             "mem": {"demand": "weight", "cap": 3.0}},
        )
        mapping = map_computation(tg, topo, strategy="mwm")
        faults = FaultSet(failed_procs=[0], failed_links=[(4, 5)])
        report = repair_mapping(tg, mapping, topo, faults)
        report.mapping.validate(require_routes=True)
        loads = {}
        for task, proc in report.mapping.assignment.items():
            loads.setdefault(proc, [0.0, 0.0])
            loads[proc][0] += 1.0                  # slots
            loads[proc][1] += tg.node_weight(task)  # mem
        assert 0 not in loads
        assert all(s <= 3.0 and m <= 3.0 for s, m in loads.values())
        # The dead link never appears in any route of the repaired mapping.
        for route in report.mapping.routes.values():
            for u, v in zip(route, route[1:]):
                assert {u, v} != {4, 5}

    def test_incremental_relocation_respects_tight_resource(self):
        # One survivor has slots room but no mem room; the other has mem
        # room.  The relocated heavy task must land on the mem-roomy one
        # even though it is farther away.
        from repro.graph.taskgraph import TaskGraph
        from repro.mapper.mapping import Mapping
        from repro.mapper.routing.mm_route import mm_route

        tg = TaskGraph("tight")
        for label, w in (("a", 2.0), ("b", 2.5), ("c", 0.5)):
            tg.add_node(label, w)
        phase = tg.add_comm_phase("talk")
        phase.add("a", "b", 1.0)
        phase.add("b", "c", 1.0)
        tg.add_exec_phase("work", 1.0)
        topo = self._machine(
            networks.path(3) if hasattr(networks, "path") else networks.ring(3),
            {"slots": {"demand": "unit", "cap": 2.0},
             "mem": {"demand": "weight", "cap": 3.0}},
        )
        assignment = {"a": 0, "b": 1, "c": 2}
        mapping = Mapping(tg, topo, assignment, provenance="handmade")
        mapping.routes = mm_route(tg, topo, assignment).routes
        report = repair_mapping(
            tg, mapping, topo, FaultSet(failed_procs=[0]), mode="incremental"
        )
        report.mapping.validate()
        new_home = report.mapping.assignment["a"]
        # proc 1 holds b (mem 2.5 of 3.0): a (mem 2.0) cannot fit there.
        assert new_home == 2

    def test_incremental_raises_when_no_headroom_anywhere(self):
        from repro.mapper.mapping import Mapping
        from repro.mapper.routing.mm_route import mm_route

        tg = self._weighted_ring([2.0, 2.0, 2.0])
        topo = self._machine(
            networks.ring(3),
            {"mem": {"demand": "weight", "cap": 2.0}},
        )
        assignment = {0: 0, 1: 1, 2: 2}
        mapping = Mapping(tg, topo, assignment, provenance="handmade")
        mapping.routes = mm_route(tg, topo, assignment).routes
        with pytest.raises(ValueError, match="capacity headroom"):
            repair_mapping(
                tg, mapping, topo, FaultSet(failed_procs=[0]),
                mode="incremental",
            )

    def test_auto_mode_degrades_gracefully_or_reports(self):
        # Same instance through auto mode: either the full remap finds a
        # feasible mapping or the whole repair raises NotApplicableError;
        # auto must not return an overflowing mapping.
        from repro.mapper.mapping import Mapping, NotApplicableError
        from repro.mapper.routing.mm_route import mm_route

        tg = self._weighted_ring([2.0, 2.0, 2.0])
        topo = self._machine(
            networks.ring(3),
            {"mem": {"demand": "weight", "cap": 2.0}},
        )
        assignment = {0: 0, 1: 1, 2: 2}
        mapping = Mapping(tg, topo, assignment, provenance="handmade")
        mapping.routes = mm_route(tg, topo, assignment).routes
        try:
            report = repair_mapping(
                tg, mapping, topo, FaultSet(failed_procs=[0]), mode="auto"
            )
        except NotApplicableError:
            return  # graceful: no feasible mapping exists and repair says so
        assert report.fallback_reason is not None
        report.mapping.validate()

    def test_capacity_overflow_payload_end_to_end(self):
        # Force an overflowing assignment on the degraded machine and
        # check the structured ValidationError payload that the online
        # session and serve layers surface.
        from repro.mapper.mapping import Mapping
        from repro.util.validation import ValidationError

        tg = self._weighted_ring([2.0, 2.0, 1.0])
        topo = self._machine(
            networks.ring(3),
            {"slots": {"demand": "unit", "cap": 2.0},
             "mem": {"demand": "weight", "cap": 3.0}},
        )
        degraded = topo.degrade(FaultSet(failed_procs=[0]))
        bad = Mapping(
            tg, degraded, {0: 1, 1: 1, 2: 1}, provenance="overflow"
        )
        with pytest.raises(ValidationError) as err:
            bad.validate(require_routes=False)
        payload = err.value.payload
        assert payload["kind"] == "capacity_overflow"
        overflow = payload["overflows"][0]
        assert {"resource", "processor", "demand", "capacity"} <= set(overflow)
        # slots: 3 tasks of cap 2; mem: 5.0 of cap 3.0 -- both overflow,
        # every reported row names processor 1.
        assert {o["processor"] for o in payload["overflows"]} == {1}
        resources = {o["resource"] for o in payload["overflows"]}
        assert resources == {"slots", "mem"}
