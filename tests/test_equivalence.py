"""The legacy entry points are bit-identical shims over the pipeline.

``tests/data/equivalence_pr4.json`` was captured by running
``tests/data/capture_equivalence.py`` against the *pre-pipeline*
implementations of ``map_computation`` / ``run_portfolio`` / ``analyze``.
These tests replay the same (graph family x topology) grid through the
refactored shims and demand byte-equal assignments, routes, portfolio
candidates, and metrics -- the proof that moving every caller onto
``run_pipeline`` changed the architecture and nothing else.

The grid crosses five graph families (ring, torus, hypercube, butterfly,
binomial tree -- exercising the canned, group, and MWM dispatch paths)
with two machines (mesh, hypercube).
"""

import json
from pathlib import Path

import pytest

from repro.arch import networks
from repro.graph import families
from repro.mapper import map_computation, run_portfolio
from repro.metrics import analyze, metrics_to_dict
from repro.pipeline import MapConfig, RunConfig, SimConfig, run_pipeline
from repro.sim import CostModel

GRAPHS = {
    "ring16": lambda: families.ring(16),
    "torus4x4": lambda: families.torus(4, 4),
    "hypercube4": lambda: families.hypercube(4),
    "butterfly16": lambda: families.fft_butterfly(16),
    "binomial_tree4": lambda: families.binomial_tree(4),
}
TOPOLOGIES = {
    "mesh2x4": lambda: networks.mesh(2, 4),
    "hypercube3": lambda: networks.hypercube(3),
}
MODEL = CostModel(hop_latency=1.0, byte_time=0.5, exec_time=0.25)

GOLDEN = json.loads(
    (Path(__file__).parent / "data" / "equivalence_pr4.json").read_text()
)

GRID = [
    (gname, tname)
    for gname in GRAPHS
    for tname in TOPOLOGIES
]


def enc(x):
    if isinstance(x, tuple):
        return "|".join(str(e) for e in x)
    return str(x)


def _mapping_payload(m):
    return {
        "provenance": m.provenance,
        "assignment": {enc(t): enc(p) for t, p in m.assignment.items()},
        "routes": {
            f"{ph}#{i}": [enc(p) for p in r]
            for (ph, i), r in sorted(m.routes.items())
        },
        "routing_rounds": m.routing_rounds,
    }


@pytest.mark.parametrize("gname,tname", GRID)
def test_map_computation_matches_golden(gname, tname):
    golden = GOLDEN[f"{gname}/{tname}"]
    m = map_computation(GRAPHS[gname](), TOPOLOGIES[tname]())
    got = _mapping_payload(m)
    assert got["provenance"] == golden["provenance"]
    assert got["assignment"] == golden["assignment"]
    assert got["routes"] == golden["routes"]
    assert got["routing_rounds"] == golden["routing_rounds"]


@pytest.mark.parametrize("gname,tname", GRID)
def test_portfolio_matches_golden(gname, tname):
    golden = GOLDEN[f"{gname}/{tname}"]["portfolio"]
    pf = run_portfolio(GRAPHS[gname](), TOPOLOGIES[tname](), model=MODEL)
    assert pf.winner == golden["winner"]
    assert pf.completion_time == golden["completion_time"]
    assert [
        [c.strategy, c.completion_time, c.ok] for c in pf.candidates
    ] == golden["candidates"]


@pytest.mark.parametrize("gname,tname", GRID)
def test_metrics_match_golden(gname, tname):
    golden = GOLDEN[f"{gname}/{tname}"]["metrics"]
    m = map_computation(GRAPHS[gname](), TOPOLOGIES[tname]())
    metrics = analyze(m, MODEL)
    # Round-trip through JSON so float representations compare the same
    # way the golden file stored them.
    got = json.loads(json.dumps(metrics_to_dict(metrics, m)))
    assert got == golden


@pytest.mark.parametrize("gname,tname", GRID)
def test_uniform_capacities_match_golden(gname, tname):
    """Generous uniform capacities leave every assignment bit-identical.

    The capacity-aware code paths run (the machine declares vectors) but
    never bind, so contraction, embedding, and refinement must make
    exactly the choices the scalar-bound implementation made -- the PR 9
    analogue of the PR 4 shim proof.
    """
    from repro.arch.hierarchy import with_capacities

    golden = GOLDEN[f"{gname}/{tname}"]
    tg = GRAPHS[gname]()
    base = TOPOLOGIES[tname]()
    capped = with_capacities(base, {
        "slots": tg.n_tasks,
        "memory": {
            "demand": "weight",
            "cap": float(sum(tg.node_weight(t) for t in tg.nodes)),
        },
    })
    result = run_pipeline(
        tg, capped,
        RunConfig(map=MapConfig(strategy="auto"), cache=False),
    )
    got = _mapping_payload(result.mapping)
    assert got["provenance"] == golden["provenance"]
    assert got["assignment"] == golden["assignment"]
    assert got["routes"] == golden["routes"]


@pytest.mark.parametrize("gname,tname", GRID)
def test_pipeline_agrees_with_shim(gname, tname):
    """The engine run directly gives the same artifacts the shims give."""
    m = map_computation(GRAPHS[gname](), TOPOLOGIES[tname]())
    result = run_pipeline(
        GRAPHS[gname](),
        TOPOLOGIES[tname](),
        RunConfig(
            map=MapConfig(strategy="auto"),
            sim=SimConfig.from_model(MODEL),
            cache=False,
        ),
    )
    assert result.mapping.assignment == m.assignment
    assert result.mapping.routes == m.routes
    assert result.strategy == m.provenance
    assert result.sim is not None and result.metrics is not None
