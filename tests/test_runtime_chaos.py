"""The chaos suite: supervised fan-outs under injected toolchain faults.

Three acceptance properties from the robustness PR live here:

* **Graceful degradation** -- a portfolio/sweep under chaos completes
  with explicit failed entries and deterministic winners/rankings among
  the survivors, never a hang or an unstructured crash.
* **No-chaos equivalence** -- with chaos off, every entry point's output
  is bit-identical to a plain unsupervised run.
* **Kill + resume** -- a run killed mid-flight and re-invoked with the
  same inputs resumes from its checkpoint journal and produces output
  bit-identical to an uninterrupted run.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.arch import networks
from repro.errors import AllStrategiesFailed
from repro.graph import families
from repro.graph.taskgraph import TaskGraph
from repro.mapper import run_portfolio
from repro.mapper.portfolio import DEFAULT_STRATEGIES
from repro.pipeline import ArtifactCache, run_pipeline_batch
from repro.resilience import failure_sweep
from repro.runtime import ChaosPlan, KILL_EXIT_CODE, RetryPolicy

#: Near-zero backoff so multi-attempt tests stay fast.
FAST_RETRY = RetryPolicy(max_attempts=3, backoff=0.001)


def _instance():
    return families.nbody(15), networks.hypercube(3)


class TestPortfolioUnderChaos:
    def test_crashed_strategy_becomes_failed_candidate(self):
        clean = run_portfolio(*_instance())
        winner_index = [c.strategy for c in clean.candidates].index(clean.winner)
        chaotic = run_portfolio(
            *_instance(), chaos=ChaosPlan(crashes=[(winner_index, 1)])
        )
        dead = chaotic.candidates[winner_index]
        assert not dead.ok and dead.failed and dead.error_kind == "crash"
        # The portfolio degraded to the best survivor, deterministically.
        survivors = [c for c in chaotic.candidates if c.ok]
        assert survivors
        assert chaotic.completion_time == min(
            c.completion_time for c in survivors
        )
        assert chaotic.winner != clean.winner

    @pytest.mark.parametrize(
        "executor,workers", [("serial", None), ("thread", 2), ("thread", 4)]
    )
    def test_chaotic_winner_is_executor_independent(self, executor, workers):
        chaos = ChaosPlan(crashes=[(0, 1)], transients=[(2, 1)])
        baseline = run_portfolio(*_instance(), chaos=chaos, retry=FAST_RETRY)
        other = run_portfolio(
            *_instance(), chaos=chaos, retry=FAST_RETRY,
            executor=executor, max_workers=workers,
        )
        assert other.to_dict() == baseline.to_dict()

    def test_all_strategies_crashing_raises_all_failed(self):
        chaos = ChaosPlan(
            crashes=[(i, 1) for i in range(len(DEFAULT_STRATEGIES))]
        )
        with pytest.raises(AllStrategiesFailed, match="no portfolio strategy"):
            run_portfolio(*_instance(), chaos=chaos)

    def test_transients_with_retries_match_the_clean_run(self):
        clean = run_portfolio(*_instance())
        chaos = ChaosPlan(transients=[(i, 1) for i in range(3)])
        retried = run_portfolio(*_instance(), chaos=chaos, retry=FAST_RETRY)
        assert retried.to_dict() == clean.to_dict()

    def test_no_chaos_is_bit_identical_to_plain_run(self):
        plain = run_portfolio(*_instance())
        supervised = run_portfolio(
            *_instance(), chaos=ChaosPlan(), deadline=120.0,
            retry=FAST_RETRY, resume="auto", cache=ArtifactCache(),
        )
        assert supervised.to_dict() == plain.to_dict()

    def test_resumed_portfolio_matches_uninterrupted(self):
        cache = ArtifactCache()
        first = run_portfolio(*_instance(), resume="auto", cache=cache)
        resumed = run_portfolio(*_instance(), resume="auto", cache=cache)
        assert resumed.to_dict() == first.to_dict()

    def test_unknown_resume_mode(self):
        with pytest.raises(ValueError, match="unknown resume mode"):
            run_portfolio(*_instance(), resume="maybe")


class TestSweepUnderChaos:
    def _sweep(self, **kwargs):
        return failure_sweep(
            families.ring(12), networks.hypercube(3),
            elements="processors", **kwargs,
        )

    def test_crashed_trials_become_failed_rows(self):
        chaos = ChaosPlan(crashes=[(2, 1), (5, 1)])
        sweep = self._sweep(chaos=chaos)
        failed = [e for e in sweep.entries if e.status == "failed"]
        assert len(failed) == 2
        assert all(e.error for e in failed)
        dist = sweep.distribution()
        assert dist["failed"] == 2
        assert dist["faults"] == 8
        assert dist["survivable"] + dist["disconnecting"] + dist["failed"] == 8

    def test_failed_rows_rank_between_disconnecting_and_ok(self):
        chaos = ChaosPlan(crashes=[(3, 1)])
        ranking = self._sweep(chaos=chaos).ranking()
        statuses = [e.status for e in ranking]
        order = {"disconnects": 0, "failed": 1, "ok": 2}
        assert statuses == sorted(statuses, key=order.__getitem__)
        assert "failed" in statuses

    def test_transients_with_retries_match_the_clean_sweep(self):
        clean = self._sweep()
        chaos = ChaosPlan(transients=[(i, 1) for i in range(4)])
        retried = self._sweep(chaos=chaos, retry=FAST_RETRY)
        assert retried.to_dict() == clean.to_dict()

    def test_no_chaos_is_bit_identical_to_plain_sweep(self):
        plain = self._sweep()
        supervised = self._sweep(
            chaos=ChaosPlan(), deadline=120.0, retry=FAST_RETRY,
            resume="auto", cache=ArtifactCache(),
        )
        assert supervised.to_dict() == plain.to_dict()

    def test_chaotic_ranking_is_executor_independent(self):
        chaos = ChaosPlan(crashes=[(1, 1)], transients=[(4, 1)])
        serial = self._sweep(chaos=chaos, retry=FAST_RETRY)
        threaded = self._sweep(
            chaos=chaos, retry=FAST_RETRY, executor="thread", max_workers=3
        )
        assert threaded.to_dict() == serial.to_dict()

    def test_unknown_resume_mode(self):
        with pytest.raises(ValueError, match="unknown resume mode"):
            self._sweep(resume="always")


class TestPipelineBatch:
    def _instances(self):
        return [
            (families.ring(8), networks.ring(8)),
            (families.nbody(15), networks.hypercube(3)),
            (families.torus(4, 4), networks.mesh(4, 4)),
        ]

    def test_failures_do_not_abort_the_batch(self):
        bad = TaskGraph("broken")
        bad.add_nodes(range(4))
        bad.add_comm_phase("p").add(0, 99, 1.0)  # undeclared task: rejected
        instances = self._instances() + [(bad, networks.ring(4))]
        results = run_pipeline_batch(instances)
        assert [r.ok for r in results] == [True, True, True, False]
        assert all(r.value.mapping is not None for r in results[:3])
        assert isinstance(results[3].error, ValueError)

    def test_resume_serves_the_journal(self):
        cache = ArtifactCache()
        first = run_pipeline_batch(
            self._instances(), resume="auto", cache=cache
        )
        resumed = run_pipeline_batch(
            self._instances(), resume="auto", cache=cache
        )
        assert all(r.journal_hit for r in resumed)
        assert not any(r.journal_hit for r in first)
        assert [r.value.completion_time for r in resumed] == [
            r.value.completion_time for r in first
        ]

    def test_chaos_crash_marks_only_that_instance(self):
        results = run_pipeline_batch(
            self._instances(), chaos=ChaosPlan(crashes=[(1, 1)])
        )
        assert [r.ok for r in results] == [True, False, True]


class TestKillAndResume:
    """A run killed mid-flight resumes bit-identical to an uninterrupted one."""

    _SCRIPT = """\
import json, sys
from repro.arch import networks
from repro.graph import families
from repro.resilience import failure_sweep
from repro.runtime import ChaosPlan

chaos = ChaosPlan(kills=[(4, 1)]) if "--kill" in sys.argv else None
sweep = failure_sweep(
    families.ring(12), networks.hypercube(3),
    elements="processors", resume="auto", chaos=chaos,
)
print(json.dumps(sweep.to_dict(), sort_keys=True))
"""

    def _run(self, cache_dir, *extra):
        env = dict(os.environ)
        env["REPRO_CACHE_DIR"] = str(cache_dir)
        env.pop("REPRO_CHAOS", None)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        return subprocess.run(
            [sys.executable, "-c", self._SCRIPT, *extra],
            capture_output=True, text=True, env=env, timeout=300,
        )

    def test_killed_sweep_resumes_bit_identical(self, tmp_path):
        killed = self._run(tmp_path / "resumed-cache", "--kill")
        assert killed.returncode == KILL_EXIT_CODE, killed.stderr
        assert killed.stdout == ""  # died before printing anything

        resumed = self._run(tmp_path / "resumed-cache")
        assert resumed.returncode == 0, resumed.stderr

        uninterrupted = self._run(tmp_path / "fresh-cache")
        assert uninterrupted.returncode == 0, uninterrupted.stderr

        assert resumed.stdout == uninterrupted.stdout
        assert json.loads(resumed.stdout)["distribution"]["faults"] == 8
