"""Equivalence and behaviour tests for the batched numpy step kernel.

The contract under test: ``simulate(..., kernel="vector")`` produces a
:class:`~repro.sim.SimulationResult` whose every field is *identical*
(plain ``==``, no tolerance) to ``kernel="reference"`` -- across graph
families, machines, both switching modes, degraded links, and arbitrary
hypothesis-generated workloads.  Plus the seams around the kernel: the
FIFO tie-break, the hazard fallback, ``kernel="auto"`` selection, the
``sim.kernel_*`` perf counters, and the public ``step_cost`` API.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import networks
from repro.arch.topology import Topology
from repro.graph import families
from repro.graph.phase_expr import Rep, parse_phase_expr
from repro.graph.taskgraph import TaskGraph
from repro.mapper import map_computation
from repro.mapper.mapping import Mapping
from repro.sim import CostModel, SimulationResult, simulate, step_cost
from repro.util import perf

GRAPHS = {
    "ring16": lambda: families.ring(16),
    "torus4x4": lambda: families.torus(4, 4),
    "hypercube4": lambda: families.hypercube(4),
    "butterfly16": lambda: families.fft_butterfly(16),
    "binomial_tree4": lambda: families.binomial_tree(4),
}
TOPOLOGIES = {
    "mesh2x4": lambda: networks.mesh(2, 4),
    "hypercube3": lambda: networks.hypercube(3),
}
SWITCHING = ("store_and_forward", "cut_through")

GRID = [
    pytest.param(g, t, s, id=f"{g}-{t}-{s}")
    for g in GRAPHS
    for t in TOPOLOGIES
    for s in SWITCHING
]


def assert_identical(ref: SimulationResult, vec: SimulationResult):
    """Every result field equal under ``==`` -- the bit-identity contract."""
    assert vec.total_time == ref.total_time
    assert vec.step_times == ref.step_times
    assert vec.link_busy == ref.link_busy
    assert vec.proc_busy == ref.proc_busy
    assert vec.phase_time == ref.phase_time
    assert vec.messages == ref.messages


def both_kernels(mapping, model, **kw):
    ref = simulate(mapping, model, kernel="reference", **kw)
    vec = simulate(mapping, model, kernel="vector", **kw)
    assert ref.kernel == "reference"
    assert vec.kernel == "vector"
    assert_identical(ref, vec)
    return ref, vec


class TestGridEquivalence:
    @pytest.mark.parametrize("gname,tname,switching", GRID)
    def test_pristine(self, gname, tname, switching):
        tg = GRAPHS[gname]()
        tg.phase_expr = Rep(tg.phase_expr, 5)
        m = map_computation(tg, TOPOLOGIES[tname]())
        model = CostModel(
            hop_latency=1.0, byte_time=0.5, exec_time=0.25, switching=switching
        )
        for memoize in (True, False):
            both_kernels(m, model, memoize=memoize)

    @pytest.mark.parametrize("gname,tname,switching", GRID)
    def test_degraded_links(self, gname, tname, switching):
        tg = GRAPHS[gname]()
        tg.phase_expr = Rep(tg.phase_expr, 3)
        topo = TOPOLOGIES[tname]()
        m = map_computation(tg, topo)
        model = CostModel(
            hop_latency=1.0, byte_time=0.5, exec_time=0.25, switching=switching
        )
        # Degrade a third of the machine's links with distinct factors.
        slowdowns = {lid: 1.5 + 0.25 * lid for lid in range(1, topo.n_links, 3)}
        both_kernels(m, model, link_slowdowns=slowdowns)

    def test_degraded_topology_slowdowns_default(self):
        """A degrade()d machine's own slowdown map feeds both kernels."""
        from repro.resilience import FaultSet

        topo = networks.mesh(2, 4)
        link = next(iter(topo.links))
        faults = FaultSet(degraded_links={tuple(link): 3.0})
        degraded = topo.degrade(faults)
        tg = families.ring(8)
        tg.phase_expr = Rep(tg.phase_expr, 4)
        m = map_computation(tg, degraded)
        both_kernels(m, CostModel(hop_latency=1.0, byte_time=0.5))


# ----------------------------------------------------------------------
# hypothesis: random workloads, both switching modes
# ----------------------------------------------------------------------

def _random_workload(draw):
    n_tasks = draw(st.integers(4, 9))
    tasks = [f"t{i}" for i in range(n_tasks)]
    n_phases = draw(st.integers(1, 3))
    tg = TaskGraph("hyp")
    for t in tasks:
        tg.add_node(t)
    names = []
    for p in range(n_phases):
        name = f"c{p}"
        edges = draw(
            st.lists(
                st.tuples(
                    st.integers(0, n_tasks - 1),
                    st.integers(0, n_tasks - 1),
                    st.floats(0.125, 16.0, allow_nan=False, allow_infinity=False),
                ),
                min_size=1,
                max_size=8,
            )
        )
        phase = tg.add_comm_phase(name)
        for a, b, vol in edges:
            if a != b:
                phase.add(tasks[a], tasks[b], vol)
        names.append(name)
    tg.add_exec_phase("work", draw(st.floats(0.0, 2.0, allow_nan=False)))
    # Random expression over the phases: sequence of refs/repetitions
    # of parallel groups, e.g. (c0 || work); (c1; c0)^3.
    parts = []
    for _ in range(draw(st.integers(1, 3))):
        group = draw(st.sampled_from(names + ["work"]))
        other = draw(st.sampled_from(names + ["work"]))
        expr = f"({group} || {other})" if group != other else group
        reps = draw(st.integers(1, 4))
        parts.append(f"({expr})^{reps}" if reps > 1 else expr)
    tg.phase_expr = parse_phase_expr("; ".join(parts))
    return tg


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_hypothesis_equivalence(data):
    tg = _random_workload(data.draw)
    topo = data.draw(
        st.sampled_from([networks.mesh(2, 2), networks.ring(5), networks.mesh(2, 3)])
    )
    switching = data.draw(st.sampled_from(SWITCHING))
    m = map_computation(tg, topo)
    slowdowns = data.draw(
        st.one_of(
            st.none(),
            st.dictionaries(
                st.integers(1, topo.n_links),
                st.floats(1.0, 4.0, allow_nan=False),
                max_size=topo.n_links,
            ),
        )
    )
    model = CostModel(
        hop_latency=data.draw(st.floats(0.0, 2.0, allow_nan=False)),
        byte_time=data.draw(st.floats(0.0, 2.0, allow_nan=False)),
        exec_time=0.25,
        switching=switching,
    )
    memoize = data.draw(st.booleans())
    both_kernels(m, model, memoize=memoize, link_slowdowns=slowdowns)


# ----------------------------------------------------------------------
# deterministic tie-break and hazard fallback
# ----------------------------------------------------------------------

def _manual_mapping(tg, topo, assignment, routes):
    m = Mapping(tg, topo, assignment, provenance="manual")
    m.routes = routes
    return m


class TestFifoTieBreak:
    def test_equal_arrivals_serve_in_message_id_order(self):
        """Two messages hit one link at t=0; the lower id must go first.

        msg 0 (volume 4) continues p0-p1-p2; msg 1 (volume 1) stops at p1.
        If the tie on link (p0, p1) broke the other way, msg 0 would reach
        its second hop later and the step would take longer -- so the
        totals below only hold under the id-order tie-break.
        """
        topo = Topology("path3", [("p0", "p1"), ("p1", "p2")])
        tg = TaskGraph("tie")
        for t in ("a", "b", "far", "near"):
            tg.add_node(t)
        ph = tg.add_comm_phase("c")
        ph.add("a", "far", 4.0)   # msg 0: p0 -> p2
        ph.add("b", "near", 1.0)  # msg 1: p0 -> p1
        tg.phase_expr = parse_phase_expr("c")
        m = _manual_mapping(
            tg,
            topo,
            {"a": "p0", "b": "p0", "far": "p2", "near": "p1"},
            {("c", 0): ["p0", "p1", "p2"], ("c", 1): ["p0", "p1"]},
        )
        model = CostModel(hop_latency=1.0, byte_time=1.0, exec_time=0.0)
        ref, vec = both_kernels(m, model)
        # msg 0 first on (p0,p1): done 5, second hop 5..10; msg 1 queues
        # behind it, 5..7.  (Reversed order would finish at 12.)
        assert vec.total_time == 10.0

    def test_cut_through_launch_order(self):
        topo = Topology("path3", [("p0", "p1"), ("p1", "p2")])
        tg = TaskGraph("tie-ct")
        for t in ("a", "b", "far", "near"):
            tg.add_node(t)
        ph = tg.add_comm_phase("c")
        ph.add("a", "far", 4.0)
        ph.add("b", "near", 1.0)
        tg.phase_expr = parse_phase_expr("c")
        m = _manual_mapping(
            tg,
            topo,
            {"a": "p0", "b": "p0", "far": "p2", "near": "p1"},
            {("c", 0): ["p0", "p1", "p2"], ("c", 1): ["p0", "p1"]},
        )
        model = CostModel(
            hop_latency=1.0, byte_time=1.0, exec_time=0.0, switching="cut_through"
        )
        ref, vec = both_kernels(m, model)
        # msg 0 holds both links 0..6; msg 1 launches at 6, done at 8.
        assert vec.total_time == 8.0


class TestHazardFallback:
    def _inversion_mapping(self):
        """A schedule where round-major order breaks FIFO on a link.

        msg 0 (3 hops, small) reaches link (x2, x3) at its hop 2; msg 1
        (2 hops, huge first hop) reaches the same link at its hop 1 but
        *later*.  The round-major candidate serves msg 1 first (round 1
        precedes round 2), inverting the FIFO order the event loop
        produces -- the kernel must detect this and fall back.
        """
        topo = Topology(
            "hazard", [("x0", "x1"), ("x1", "x2"), ("x2", "x3"), ("y0", "x2")]
        )
        tg = TaskGraph("hazard")
        for t in ("a", "b", "da", "db"):
            tg.add_node(t)
        ph = tg.add_comm_phase("c")
        ph.add("a", "da", 1.0)    # msg 0: x0-x1-x2-x3, per-hop 2
        ph.add("b", "db", 50.0)   # msg 1: y0-x2-x3, per-hop 51
        tg.phase_expr = parse_phase_expr("c")
        return _manual_mapping(
            tg,
            topo,
            {"a": "x0", "b": "y0", "da": "x3", "db": "x3"},
            {("c", 0): ["x0", "x1", "x2", "x3"], ("c", 1): ["y0", "x2", "x3"]},
        )

    def test_fallback_matches_reference(self):
        m = self._inversion_mapping()
        model = CostModel(hop_latency=1.0, byte_time=1.0, exec_time=0.0)
        perf.reset()
        ref, vec = both_kernels(m, model)
        assert perf.counters().get("sim.vector_fallback", 0) >= 1
        # Event-loop semantics: msg 0 arrives at (x2,x3) at t=4 and goes
        # first (4..6); msg 1 arrives at 51, serves 51..102.
        assert vec.total_time == 102.0


# ----------------------------------------------------------------------
# kernel selection, provenance, and the public step API
# ----------------------------------------------------------------------

class TestKernelSelection:
    def test_auto_small_run_uses_reference(self):
        tg = families.ring(4)
        m = map_computation(tg, networks.ring(4))
        assert simulate(m, kernel="auto").kernel == "reference"

    def test_auto_large_run_uses_vector(self):
        tg = families.ring(16)
        tg.phase_expr = Rep(tg.phase_expr, 300)
        m = map_computation(tg, networks.mesh(2, 4))
        assert simulate(m, kernel="auto", memoize=False).kernel == "vector"
        # Memoized runs dedupe the hop count but still cross the
        # step-count threshold.
        assert simulate(m, kernel="auto", memoize=True).kernel == "vector"

    def test_invalid_kernel_rejected(self):
        m = map_computation(families.ring(4), networks.ring(4))
        with pytest.raises(ValueError, match="kernel"):
            simulate(m, kernel="numpy")

    def test_perf_counters_record_path(self):
        m = map_computation(families.ring(4), networks.ring(4))
        perf.reset()
        simulate(m, kernel="vector")
        simulate(m, kernel="reference")
        counters = perf.counters()
        assert counters.get("sim.kernel_vector") == 1
        assert counters.get("sim.kernel_reference") == 1


class TestStepCost:
    def test_matches_single_step_simulation(self):
        tg = families.torus(4, 4)
        tg.phase_expr = None  # simulate() treats this as one parallel step
        m = map_computation(tg, networks.mesh(2, 4))
        model = CostModel(hop_latency=1.0, byte_time=0.5, exec_time=0.25)
        expected = simulate(m, model, kernel="reference").step_times[0]
        assert step_cost(m, model) == expected

    def test_subset_of_phases(self):
        tg = families.ring(8)
        m = map_computation(tg, networks.mesh(2, 4))
        model = CostModel(hop_latency=1.0, byte_time=0.5, exec_time=0.25)
        full = step_cost(m, model)
        comm_only = step_cost(m, model, tg.comm_phase_names)
        exec_only = step_cost(m, model, tg.exec_phase_names)
        assert full >= max(comm_only, exec_only)
        assert exec_only > 0

    def test_degraded_links_raise_cost(self):
        tg = families.ring(8)
        m = map_computation(tg, networks.mesh(2, 4))
        model = CostModel(hop_latency=1.0, byte_time=0.5, exec_time=0.0)
        base = step_cost(m, model)
        slow = step_cost(
            m, model, link_slowdowns={lid: 2.0 for lid in range(1, 11)}
        )
        assert slow > base
