"""Tests for repro.arch.topology."""

import pytest
from hypothesis import given, strategies as st

from repro.arch import networks
from repro.arch.topology import Topology


class TestConstruction:
    def test_disconnected_rejected(self):
        with pytest.raises(ValueError):
            Topology("bad", [(0, 1), (2, 3)])

    def test_self_link_rejected(self):
        with pytest.raises(ValueError):
            Topology("bad", [(0, 0)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Topology("bad", [])

    def test_single_node(self):
        t = Topology("solo", [], nodes=[0])
        assert t.n_processors == 1 and t.n_links == 0

    def test_counts(self):
        t = networks.hypercube(3)
        assert t.n_processors == 8
        assert t.n_links == 12


class TestLinks:
    def test_link_ids_one_based_and_unique(self):
        t = networks.hypercube(3)
        ids = {t.link_id(u, v) for u, v in (tuple(l) for l in t.links)}
        assert ids == set(range(1, 13))

    def test_link_id_orientation_free(self):
        t = networks.ring(5)
        assert t.link_id(0, 1) == t.link_id(1, 0)

    def test_link_by_id_roundtrip(self):
        t = networks.mesh(2, 3)
        for link in t.links:
            u, v = tuple(link)
            assert t.link_by_id(t.link_id(u, v)) == link

    def test_missing_link(self):
        t = networks.ring(6)
        with pytest.raises(KeyError):
            t.link_id(0, 3)

    def test_has_link(self):
        t = networks.ring(4)
        assert t.has_link(0, 1) and not t.has_link(0, 2)

    def test_route_links_cached_results_are_fresh_lists(self):
        t = networks.ring(6)
        route = [0, 1, 2]
        first = t.route_links(route)
        first.append(999)  # caller-side mutation must not poison the cache
        assert t.route_links(route) == [t.link_id(0, 1), t.link_id(1, 2)]

    def test_route_links_rejects_non_walks(self):
        t = networks.ring(6)
        with pytest.raises(KeyError):
            t.route_links([0, 3])
        # ... including after a valid prefix was cached
        t.route_links([0, 1])
        with pytest.raises(KeyError):
            t.route_links([0, 1, 4])


class TestDistances:
    def test_hypercube_distance_is_hamming(self):
        t = networks.hypercube(4)
        for u in range(16):
            for v in range(16):
                assert t.distance(u, v) == bin(u ^ v).count("1")

    def test_ring_diameter(self):
        assert networks.ring(8).diameter == 4
        assert networks.ring(7).diameter == 3

    def test_mesh_diameter(self):
        assert networks.mesh(3, 4).diameter == 5

    def test_complete_diameter(self):
        assert networks.complete(5).diameter == 1


class TestNextHopsAndRoutes:
    def test_next_hops_empty_at_destination(self):
        t = networks.hypercube(3)
        assert t.next_hops(5, 5) == []

    def test_next_hops_hypercube(self):
        t = networks.hypercube(3)
        # From 0 to 3 (bits 0 and 1 differ): hops via 1 or 2.
        assert sorted(t.next_hops(0, 3)) == [1, 2]

    def test_shortest_routes_count_hypercube(self):
        t = networks.hypercube(3)
        # Distance-2 pairs have exactly 2 shortest routes; distance-3 have 6.
        assert len(t.shortest_routes(0, 3)) == 2
        assert len(t.shortest_routes(0, 7)) == 6

    def test_shortest_routes_all_valid_and_shortest(self):
        t = networks.mesh(3, 3)
        for dst in range(9):
            for route in t.shortest_routes(0, dst):
                assert t.is_valid_route(route)
                assert len(route) - 1 == t.distance(0, dst)
                assert route[0] == 0 and route[-1] == dst

    def test_shortest_routes_trivial(self):
        t = networks.ring(4)
        assert t.shortest_routes(2, 2) == [[2]]

    def test_shortest_routes_limit(self):
        t = networks.hypercube(4)
        assert len(t.shortest_routes(0, 15, limit=5)) == 5

    def test_route_links(self):
        t = networks.ring(4)
        route = [0, 1, 2]
        lids = t.route_links(route)
        assert lids == [t.link_id(0, 1), t.link_id(1, 2)]

    def test_is_valid_route_rejects_jumps(self):
        t = networks.ring(6)
        assert not t.is_valid_route([0, 2])
        assert not t.is_valid_route([])

    def test_routing_table_fig6_shape(self):
        # The 8-processor hypercube's table: every ordered pair present,
        # each entry the link sequences of shortest routes.
        t = networks.hypercube(3)
        table = t.routing_table()
        assert len(table) == 8 * 7
        assert len(table[(0, 3)]) == 2  # distance 2: two choices
        assert len(table[(0, 7)]) == 6  # distance 3: six choices
        for (src, dst), choices in table.items():
            for links in choices:
                assert len(links) == t.distance(src, dst)

    def test_routing_table_limit(self):
        t = networks.hypercube(4)
        table = t.routing_table(limit=3)
        assert all(len(choices) <= 3 for choices in table.values())

    @given(st.integers(min_value=2, max_value=5))
    def test_next_hops_reduce_distance(self, dim):
        t = networks.hypercube(dim)
        n = 1 << dim
        for u in range(0, n, max(1, n // 4)):
            for v in range(0, n, max(1, n // 4)):
                if u == v:
                    continue
                for nb in t.next_hops(u, v):
                    assert t.distance(nb, v) == t.distance(u, v) - 1
