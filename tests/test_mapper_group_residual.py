"""Tests for the 'almost node symmetric' partial group contraction."""

import pytest

from repro.arch import networks
from repro.graph import families
from repro.mapper import map_computation
from repro.mapper.contraction import group_contract
from repro.mapper.mapping import NotApplicableError


def nbody_with_aggregate(n=8):
    """A Cayley graph plus one non-bijective phase (everyone reports to 0)."""
    tg = families.ring(n)
    tg.family = None  # hide the name so dispatch exercises the group path
    report = tg.add_comm_phase("report")
    for i in range(1, n):
        report.add(i, 0, 1.0)
    tg.phase_expr = None
    return tg


class TestAllowResidual:
    def test_strict_mode_rejects(self):
        with pytest.raises(NotApplicableError):
            group_contract(nbody_with_aggregate(), 4)

    def test_residual_mode_accepts(self):
        gc = group_contract(nbody_with_aggregate(), 4, allow_residual=True)
        assert len(gc.clusters) == 4
        assert all(len(c) == 2 for c in gc.clusters)
        assert gc.residual_phases == ["report"]

    def test_residual_volume_accounted(self):
        gc = group_contract(nbody_with_aggregate(), 4, allow_residual=True)
        # Some report edges land inside clusters (task 0's cluster-mates).
        assert gc.residual_internal_volume >= 0.0
        # Partition still exact.
        flat = sorted(t for c in gc.clusters for t in c)
        assert flat == list(range(8))

    def test_residual_influences_subgroup_choice(self):
        # A heavy residual phase between i and i+4 should pull the subgroup
        # towards <+4> (internalising it) rather than any equal alternative.
        tg = families.ring(8, volume=0.001)
        heavy = tg.add_comm_phase("heavy")
        for i in range(4):
            heavy.add(i, i + 4, 100.0)
        tg.phase_expr = None
        gc = group_contract(tg, 4, allow_residual=True)
        clusters = sorted(map(sorted, gc.clusters))
        assert clusters == [[0, 4], [1, 5], [2, 6], [3, 7]]
        assert gc.residual_internal_volume == 400.0

    def test_no_bijective_phase_still_rejected(self):
        tg = families.star(8)
        with pytest.raises(NotApplicableError, match="no communication phase"):
            group_contract(tg, 4, allow_residual=True)

    def test_dispatch_uses_group_path_with_residual(self):
        tg = nbody_with_aggregate()
        m = map_computation(tg, networks.hypercube(2))
        assert m.provenance == "group"
        m.validate(require_routes=True)

    def test_tuple_labels_rejected(self):
        from repro.larcs import stdlib

        tg = stdlib.load("jacobi", rows=3, cols=3)
        with pytest.raises(NotApplicableError):
            group_contract(tg, 3, allow_residual=True)
