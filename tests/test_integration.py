"""End-to-end integration tests: LaRCS -> MAPPER -> METRICS -> simulator.

Each test walks the complete OREGAMI pipeline the way a user would, across
the full workload x architecture matrix, and checks the cross-cutting
invariants no unit test sees: assignments respect load bounds, every route
connects what the assignment says it should, metrics agree with the raw
mapping, simulation honours the phase expression, and the interactive
session keeps everything consistent through edits.
"""

import pytest

from repro import (
    CostModel,
    MappingSession,
    analyze,
    compile_larcs,
    map_computation,
    render_report,
    simulate,
)
from repro.arch import networks
from repro.larcs import stdlib
from repro.metrics.display import render_mapping_ascii
from repro.sched import build_directives, derive_synchrony_sets

WORKLOADS = {
    "nbody": dict(n=15),
    "jacobi": dict(rows=4, cols=4),
    "sor": dict(rows=4, cols=4),
    "fft": dict(m=4),
    "dnc": dict(m=4),
    "cannon": dict(q=3),
    "voting": dict(m=4),
    "pipeline": dict(n=8),
    "annealing": dict(rows=4, cols=4),
}

TOPOLOGIES = {
    "hypercube3": lambda: networks.hypercube(3),
    "mesh2x4": lambda: networks.mesh(2, 4),
    "ring8": lambda: networks.ring(8),
    "ccc2": lambda: networks.cube_connected_cycles(2),
}


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("toponame", sorted(TOPOLOGIES))
def test_full_pipeline_matrix(workload, toponame):
    tg = stdlib.load(workload, **WORKLOADS[workload])
    topo = TOPOLOGIES[toponame]()
    mapping = map_computation(tg, topo)
    mapping.validate(require_routes=True)

    metrics = analyze(mapping)
    # Cross-check: metrics' task counts match the mapping.
    assert sum(metrics.tasks_per_processor.values()) == tg.n_tasks
    # Cross-check: total IPC equals the volume of inter-processor edges.
    expected_ipc = sum(
        e.volume
        for _, e in tg.all_edges()
        if mapping.proc_of(e.src) != mapping.proc_of(e.dst)
    )
    assert metrics.total_ipc == pytest.approx(expected_ipc)
    # Reports render without error and mention the graph.
    assert tg.name in render_report(mapping, metrics)
    render_mapping_ascii(mapping)

    # Simulation runs the whole phase expression.
    sim = simulate(mapping, CostModel(exec_time=0.01))
    if tg.phase_expr is not None:
        assert len(sim.step_times) == len(tg.phase_expr.linearize())
    assert sim.total_time >= 0


@pytest.mark.parametrize("workload", ["nbody", "fft", "voting"])
def test_load_bound_respected_across_strategies(workload):
    tg = stdlib.load(workload, **WORKLOADS[workload])
    topo = networks.hypercube(3)
    n = tg.n_tasks
    bound = -(-n // 8)  # ceil
    for strategy in ("auto", "mwm"):
        mapping = map_computation(tg, topo, strategy=strategy, load_bound=bound)
        assert all(len(ts) <= bound for ts in mapping.clusters().values())


def test_larcs_reparametrisation_pipeline():
    """One program, many sizes, one pipeline -- the portability story."""
    from repro.larcs import parse_larcs
    from repro.larcs.evaluator import elaborate

    program = parse_larcs(stdlib.NBODY)
    for n, dim in [(7, 2), (15, 3), (31, 4)]:
        tg, warnings = elaborate(program, {"n": n})
        assert warnings == []
        mapping = map_computation(tg, networks.hypercube(dim))
        mapping.validate(require_routes=True)
        assert len(mapping.used_procs()) == 1 << dim


def test_session_edit_keeps_invariants():
    tg = stdlib.load("nbody", n=15)
    topo = networks.hypercube(3)
    session = MappingSession(map_computation(tg, topo))
    for task in (0, 5, 9):
        target = (session.mapping.proc_of(task) + 1) % 8
        session.move_task(task, target)
        session.mapping.validate(require_routes=True)
        metrics = session.metrics
        assert sum(metrics.tasks_per_processor.values()) == 15
    while session.edits:
        session.undo()
    session.mapping.validate(require_routes=True)


def test_scheduling_pipeline():
    """Mapping -> synchrony sets -> directives, on a multiplexed mapping."""
    tg = stdlib.load("voting", m=4)
    topo = networks.hypercube(2)
    mapping = map_computation(tg, topo)
    sets = derive_synchrony_sets(mapping)
    sets.validate(mapping)
    directives = build_directives(mapping, sets)
    # Every task appears in its processor's directive for each exec step.
    steps = tg.phase_expr.linearize()
    exec_step = next(i for i, s in enumerate(steps) if "tally" in s)
    for proc, sched in directives.items():
        assert {t for t, _ in sched.steps[exec_step]} == set(mapping.tasks_on(proc))


def test_custom_program_through_whole_stack(tmp_path):
    source = """
    algorithm stencil9(n, iters = 2);
    nodetype cell[0 .. n-1, 0 .. n-1];
    comphase halo {
        cell(i, j) -> cell(i - 1, j) where i > 0;
        cell(i, j) -> cell(i + 1, j) where i < n - 1;
        cell(i, j) -> cell(i, j - 1) where j > 0;
        cell(i, j) -> cell(i, j + 1) where j < n - 1;
        cell(i, j) -> cell(i - 1, j - 1) where i > 0 and j > 0;
        cell(i, j) -> cell(i + 1, j + 1) where i < n - 1 and j < n - 1;
        cell(i, j) -> cell(i - 1, j + 1) where i > 0 and j < n - 1;
        cell(i, j) -> cell(i + 1, j - 1) where i < n - 1 and j > 0;
    }
    execphase update for cell(i, j) cost 9;
    phases (halo; update)^iters;
    """
    result = compile_larcs(source, n=6)
    tg = result.task_graph
    assert result.warnings == []
    # 9-point stencil: interior cells have 8 out-edges.
    out_degree = sum(1 for e in tg.comm_phase("halo").edges if e.src == (3, 3))
    assert out_degree == 8
    mapping = map_computation(tg, networks.mesh(3, 3))
    mapping.validate(require_routes=True)
    sim = simulate(mapping, CostModel(exec_time=0.1))
    assert sim.total_time > 0
    assert len(sim.step_times) == 4  # (halo; update)^2
