"""Tests for the snake/fold/tile canned embeddings (repro.mapper.canned.folds)."""

import pytest
from hypothesis import given, strategies as st

from repro.arch import networks
from repro.graph import families
from repro.mapper.canned.folds import (
    _fold_positions,
    mesh_to_linear_snake,
    mesh_to_mesh_tile,
    ring_to_linear_fold,
    torus_to_mesh_fold,
)
from repro.mapper.canned.registry import canned_assignment
from repro.mapper.mapping import NotApplicableError


def max_dilation(tg, topo, assignment):
    return max(
        topo.distance(assignment[e.src], assignment[e.dst])
        for _, e in tg.all_edges()
    )


class TestFoldPositions:
    @given(st.integers(min_value=1, max_value=200))
    def test_is_permutation(self, n):
        pos = _fold_positions(n)
        assert sorted(pos.values()) == list(range(n))

    @given(st.integers(min_value=2, max_value=200))
    def test_ring_neighbours_within_two(self, n):
        pos = _fold_positions(n)
        for k in range(n):
            assert abs(pos[k] - pos[(k + 1) % n]) <= 2


class TestRingToLinear:
    def test_exact_size_dilation_two(self):
        tg = families.ring(10)
        topo = networks.linear(10)
        a = ring_to_linear_fold(tg, topo)
        assert max_dilation(tg, topo, a) <= 2

    def test_contracted(self):
        tg = families.ring(20)
        topo = networks.linear(5)
        a = ring_to_linear_fold(tg, topo)
        sizes = {}
        for p in a.values():
            sizes[p] = sizes.get(p, 0) + 1
        assert set(sizes.values()) == {4}
        assert max_dilation(tg, topo, a) <= 2

    def test_registered_for_nbody(self):
        tg = families.nbody(9)
        topo = networks.linear(9)
        a = canned_assignment(tg, topo)
        ring_dil = max(
            topo.distance(a[e.src], a[e.dst])
            for e in tg.comm_phase("ring").edges
        )
        assert ring_dil <= 2

    def test_wrong_topology(self):
        with pytest.raises(NotApplicableError):
            ring_to_linear_fold(families.ring(6), networks.mesh(2, 3))


class TestMeshToLinear:
    def test_snake_row_edges_adjacent(self):
        tg = families.mesh(3, 4)
        topo = networks.linear(12)
        a = mesh_to_linear_snake(tg, topo)
        # East/west edges are consecutive in snake order: dilation 1.
        for e in tg.comm_phase("east").edges:
            assert topo.distance(a[e.src], a[e.dst]) == 1
        # Column edges dilate by at most 2*cols - 1.
        assert max_dilation(tg, topo, a) <= 2 * 4 - 1

    def test_snake_contracted_balanced(self):
        tg = families.mesh(4, 4)
        topo = networks.linear(4)
        a = mesh_to_linear_snake(tg, topo)
        sizes = {}
        for p in a.values():
            sizes[p] = sizes.get(p, 0) + 1
        assert set(sizes.values()) == {4}

    def test_wrong_family(self):
        with pytest.raises(NotApplicableError):
            mesh_to_linear_snake(families.ring(6), networks.linear(6))


class TestMeshTile:
    def test_divisible_dilation_one(self):
        tg = families.mesh(6, 8)
        topo = networks.mesh(3, 4)
        a = mesh_to_mesh_tile(tg, topo)
        assert max_dilation(tg, topo, a) == 1
        sizes = {}
        for p in a.values():
            sizes[p] = sizes.get(p, 0) + 1
        assert set(sizes.values()) == {4}

    def test_identity_when_equal(self):
        tg = families.mesh(3, 3)
        a = mesh_to_mesh_tile(tg, networks.mesh(3, 3))
        assert a == {i: i for i in range(9)}

    def test_non_divisible_rejected(self):
        with pytest.raises(NotApplicableError):
            mesh_to_mesh_tile(families.mesh(5, 5), networks.mesh(2, 2))

    def test_registered(self):
        tg = families.mesh(4, 6)
        a = canned_assignment(tg, networks.mesh(2, 3))
        assert len(set(a.values())) == 6


class TestTorusFold:
    def test_equal_size_dilation_two(self):
        tg = families.torus(6, 8)
        topo = networks.mesh(6, 8)
        a = torus_to_mesh_fold(tg, topo)
        assert max_dilation(tg, topo, a) <= 2

    def test_is_bijection(self):
        tg = families.torus(5, 7)
        a = torus_to_mesh_fold(tg, networks.mesh(5, 7))
        assert sorted(a.values()) == list(range(35))

    def test_registry_falls_back_to_tiling(self):
        tg = families.torus(8, 8)
        a = canned_assignment(tg, networks.mesh(4, 4))
        sizes = {}
        for p in a.values():
            sizes[p] = sizes.get(p, 0) + 1
        assert set(sizes.values()) == {4}

    def test_size_mismatch_rejected(self):
        with pytest.raises(NotApplicableError):
            torus_to_mesh_fold(families.torus(4, 4), networks.mesh(2, 8))
