"""Tests for repro.util.validation."""

import pytest

from repro.util.validation import check_positive_int, check_power_of_two, require


class TestRequire:
    def test_passes(self):
        require(True, "never raised")

    def test_raises_with_message(self):
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")


class TestCheckPositiveInt:
    def test_accepts(self):
        assert check_positive_int(5, "x") == 5

    def test_rejects_zero_and_negative(self):
        with pytest.raises(ValueError):
            check_positive_int(0, "x")
        with pytest.raises(ValueError):
            check_positive_int(-1, "x")

    def test_rejects_bool_and_float(self):
        with pytest.raises(ValueError):
            check_positive_int(True, "x")
        with pytest.raises(ValueError):
            check_positive_int(2.0, "x")

    def test_message_names_parameter(self):
        with pytest.raises(ValueError, match="rows"):
            check_positive_int(-3, "rows")


class TestCheckPowerOfTwo:
    def test_accepts(self):
        for v in (1, 2, 4, 1024):
            assert check_power_of_two(v, "n") == v

    def test_rejects_non_powers(self):
        for v in (3, 6, 12, 100):
            with pytest.raises(ValueError):
                check_power_of_two(v, "n")

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            check_power_of_two(0, "n")
