"""Edge-case tests for the LaRCS front end: parser corners, odd whitespace,
comment placement, and error positions."""

import pytest

from repro.larcs import ast
from repro.larcs.compiler import compile_larcs
from repro.larcs.errors import LarcsSemanticError, LarcsSyntaxError
from repro.larcs.parser import parse_larcs


class TestWhitespaceAndComments:
    def test_single_line_program(self):
        prog = parse_larcs(
            "algorithm a(n); nodetype t[0..n-1]; comphase p t(i) -> t(i);"
        )
        assert prog.name == "a"

    def test_comments_between_tokens(self):
        src = """
        algorithm a(n);   -- the algorithm
        nodetype t[0 .. -- inclusive range
                   n-1];
        # hash comment
        comphase p t(i) -> t(i);  -- identity
        """
        prog = parse_larcs(src)
        assert len(prog.comphases) == 1

    def test_no_trailing_newline(self):
        prog = parse_larcs(
            "algorithm a(n);\nnodetype t[0..n-1];\ncomphase p t(i) -> t(i);"
        )
        assert prog.comphases[0].name == "p"

    def test_tabs(self):
        prog = parse_larcs(
            "algorithm\ta(n);\n\tnodetype t[0..n-1];\n\tcomphase p t(i) -> t(i);"
        )
        assert prog.name == "a"


class TestParserCorners:
    def test_deeply_nested_phase_expr(self):
        prog = parse_larcs(
            "algorithm a(n);\nnodetype t[0..n-1];\ncomphase p t(i) -> t(i);\n"
            "execphase w;\n"
            "phases ((((p; w)^2)^2 || eps)^2);\n"
        )
        from repro.larcs.evaluator import elaborate

        tg, _ = elaborate(prog, {"n": 3})
        assert len(tg.phase_expr.linearize()) == 16

    def test_expression_in_nodetype_range(self):
        prog = parse_larcs(
            "algorithm a(n);\nnodetype t[min(2, n) .. max(4, n) - 1];\n"
            "comphase p t(i) -> t(i);"
        )
        from repro.larcs.evaluator import elaborate

        tg, _ = elaborate(prog, {"n": 3})
        assert tg.nodes == [2, 3]

    def test_phase_index_expression(self):
        src = (
            "algorithm a(m);\nconstant n = 2**m;\nnodetype t[0..n-1];\n"
            "comphase f[s : 0..m-1] t(i) -> t(i xor (1 shl s));\n"
            "phases f[m - 1];\n"
        )
        tg = compile_larcs(src, m=3).task_graph
        assert tg.phase_expr.phase_names() == {"f[2]"}

    def test_empty_braced_comphase_is_empty_phase(self):
        # `{ }` declares a phase with no rules -- a legal placeholder for a
        # phase whose edges are filled in later (e.g. by the aggregation
        # synthesiser).
        tg = compile_larcs(
            "algorithm a(n);\nnodetype t[0..n-1];\ncomphase p { }", n=3
        ).task_graph
        assert len(tg.comm_phase("p")) == 0

    def test_missing_arrow(self):
        with pytest.raises(LarcsSyntaxError, match="->"):
            parse_larcs(
                "algorithm a(n);\nnodetype t[0..n-1];\ncomphase p t(i) t(i);"
            )

    def test_keyword_as_identifier_rejected(self):
        with pytest.raises(LarcsSyntaxError):
            parse_larcs("algorithm volume(n);")

    def test_error_position_deep_in_program(self):
        src = "algorithm a(n);\nnodetype t[0..n-1];\n\n\ncomphase p t(i) -> t(@);"
        with pytest.raises(LarcsSyntaxError) as exc:
            parse_larcs(src)
        assert "line 5" in str(exc.value)


class TestSemanticCorners:
    def test_large_exponent_ok(self):
        tg = compile_larcs(
            "algorithm a(m);\nconstant n = 2 ** m;\nnodetype t[0..n-1];\n"
            "comphase p t(i) -> t((i + 1) mod n);",
            m=10,
        ).task_graph
        assert tg.n_tasks == 1024

    def test_boolean_volume_rejected(self):
        with pytest.raises(LarcsSemanticError):
            compile_larcs(
                "algorithm a(n);\nnodetype t[0..n-1];\n"
                "comphase p t(i) -> t(i) volume true;",
                n=4,
            )

    def test_boolean_range_rejected(self):
        with pytest.raises(LarcsSemanticError):
            compile_larcs(
                "algorithm a(n);\nnodetype t[true .. n-1];\ncomphase p t(i) -> t(i);",
                n=4,
            )

    def test_where_must_be_boolean(self):
        with pytest.raises(LarcsSemanticError):
            compile_larcs(
                "algorithm a(n);\nnodetype t[0..n-1];\n"
                "comphase p t(i) -> t(i) where 1;",
                n=4,
            )

    def test_forall_empty_range_produces_no_edges(self):
        tg = compile_larcs(
            "algorithm a(n);\nnodetype t[0..n-1];\n"
            "comphase p forall j in 1..0 : t(i) -> t(j);",
            n=4,
        ).task_graph
        assert len(tg.comm_phase("p")) == 0

    def test_duplicate_nodetype_rejected(self):
        with pytest.raises(LarcsSemanticError, match="duplicate"):
            compile_larcs(
                "algorithm a(n);\nnodetype t[0..n-1];\nnodetype t[0..n-1];\n"
                "comphase p t(i) -> t(i);",
                n=4,
            )

    def test_constant_shadowing_param_rejected(self):
        with pytest.raises(LarcsSemanticError, match="shadows"):
            compile_larcs(
                "algorithm a(n);\nconstant n = 5;\nnodetype t[0..n-1];\n"
                "comphase p t(i) -> t(i);",
                n=4,
            )

    def test_index_var_shadowing_in_phase_expr(self):
        src = (
            "algorithm a(n);\nnodetype t[0..n-1];\ncomphase p t(i) -> t(i);\n"
            "phases seq n in 0..2 : p;\n"
        )
        with pytest.raises(LarcsSemanticError, match="shadows"):
            compile_larcs(src, n=4)
