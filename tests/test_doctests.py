"""Run the library's doctests as part of the suite."""

import doctest

import pytest

import repro.larcs.stdlib
import repro.util.gray

MODULES = [repro.util.gray, repro.larcs.stdlib]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    result = doctest.testmod(module)
    assert result.attempted > 0, f"{module.__name__} has no doctests to run"
    assert result.failed == 0
