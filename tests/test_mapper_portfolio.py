"""Tests for the parallel mapping-strategy portfolio."""

import pytest

from repro.arch import networks
from repro.graph import families
from repro.graph.taskgraph import TaskGraph
from repro.mapper import NotApplicableError, map_many, run_portfolio
from repro.mapper.portfolio import DEFAULT_STRATEGIES
from repro.sim import CostModel, simulate


def irregular_graph() -> TaskGraph:
    """A graph with no family tag (no canned entry) and no group structure."""
    tg = TaskGraph("irregular")
    tg.add_nodes(range(10))
    ph = tg.add_comm_phase("comm")
    for i in range(9):
        ph.add(i, i + 1, float(i + 1))
    ph.add(0, 9, 5.0)
    ph.add(2, 7, 3.0)
    return tg


class TestRunPortfolio:
    def test_winner_is_best_completion_time(self):
        result = run_portfolio(families.nbody(15), networks.hypercube(3))
        viable = [c for c in result.candidates if c.ok]
        assert viable
        assert result.completion_time == min(c.completion_time for c in viable)
        assert result.mapping is result.best.mapping

    def test_candidates_cover_all_strategies_in_order(self):
        result = run_portfolio(families.nbody(15), networks.hypercube(3))
        assert [c.strategy for c in result.candidates] == list(DEFAULT_STRATEGIES)

    def test_inapplicable_strategies_are_skipped_not_fatal(self):
        result = run_portfolio(irregular_graph(), networks.mesh(2, 4))
        skipped = {c.strategy for c in result.candidates if not c.ok}
        assert "canned" in skipped  # no family tag -> no canned mapping
        assert result.best.ok

    def test_all_inapplicable_raises(self):
        with pytest.raises(NotApplicableError, match="no portfolio strategy"):
            run_portfolio(
                irregular_graph(), networks.mesh(2, 4), strategies=("canned",)
            )

    def test_empty_strategies_rejected(self):
        with pytest.raises(ValueError, match="at least one strategy"):
            run_portfolio(families.ring(4), networks.ring(4), strategies=())

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            run_portfolio(families.ring(4), networks.ring(4), executor="gpu")

    def test_winner_time_matches_independent_simulation(self):
        model = CostModel(hop_latency=1.0, byte_time=0.5, exec_time=0.05)
        result = run_portfolio(
            families.nbody(15), networks.hypercube(3), model=model
        )
        assert result.completion_time == simulate(result.mapping, model).total_time

    @pytest.mark.parametrize(
        "executor,workers", [("serial", None), ("thread", 2), ("thread", 4)]
    )
    def test_deterministic_across_executors(self, executor, workers):
        baseline = run_portfolio(families.nbody(15), networks.hypercube(3))
        other = run_portfolio(
            families.nbody(15),
            networks.hypercube(3),
            executor=executor,
            max_workers=workers,
        )
        assert other.winner == baseline.winner
        assert other.completion_time == baseline.completion_time
        assert [
            (c.strategy, c.completion_time, c.ok) for c in other.candidates
        ] == [(c.strategy, c.completion_time, c.ok) for c in baseline.candidates]


class TestMapMany:
    def pairs(self):
        return [
            (families.ring(16), networks.hypercube(3)),
            (families.torus(4, 4), networks.mesh(4, 4)),
            (irregular_graph(), networks.mesh(2, 4)),
            (families.fft_butterfly(16), networks.hypercube(4)),
        ]

    def test_results_in_input_order(self):
        results = map_many(self.pairs(), executor="serial")
        assert len(results) == 4
        for (tg, topo), result in zip(self.pairs(), results):
            assert result.mapping.task_graph.name == tg.name
            assert result.mapping.topology.name == topo.name

    def test_thread_pool_matches_serial(self):
        serial = map_many(self.pairs(), executor="serial")
        threaded = map_many(self.pairs(), executor="thread", max_workers=4)
        assert [r.winner for r in threaded] == [r.winner for r in serial]
        assert [r.completion_time for r in threaded] == [
            r.completion_time for r in serial
        ]

    def test_process_pool_matches_serial(self):
        pairs = self.pairs()[:2]
        serial = map_many(pairs, executor="serial")
        procs = map_many(pairs, executor="process", max_workers=2)
        assert [r.winner for r in procs] == [r.winner for r in serial]
        assert [r.completion_time for r in procs] == [
            r.completion_time for r in serial
        ]
        # Returned mappings are fully usable after the pickle round-trip.
        for r in procs:
            r.mapping.validate(require_routes=True)

    def test_empty_batch(self):
        assert map_many([], executor="serial") == []

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            map_many(self.pairs(), executor="mpi")
