"""Capture golden outputs of map_computation/run_portfolio/analyze for the
PR 4 equivalence grid.  Run once against the PRE-refactor code; the committed
JSON pins the refactored shims to bit-identical behaviour.

    PYTHONPATH=src python tests/data/capture_equivalence.py
"""
import json
from pathlib import Path

from repro.arch import networks
from repro.graph import families
from repro.mapper import map_computation, run_portfolio
from repro.metrics import analyze, metrics_to_dict
from repro.sim import CostModel

GRAPHS = {
    "ring16": lambda: families.ring(16),
    "torus4x4": lambda: families.torus(4, 4),
    "hypercube4": lambda: families.hypercube(4),
    "butterfly16": lambda: families.fft_butterfly(16),
    "binomial_tree4": lambda: families.binomial_tree(4),
}
TOPOLOGIES = {
    "mesh2x4": lambda: networks.mesh(2, 4),
    "hypercube3": lambda: networks.hypercube(3),
}
MODEL = CostModel(hop_latency=1.0, byte_time=0.5, exec_time=0.25)


def enc(x):
    if isinstance(x, tuple):
        return "|".join(str(e) for e in x)
    return str(x)


def capture():
    out = {}
    for gname, gfn in GRAPHS.items():
        for tname, tfn in TOPOLOGIES.items():
            tg, topo = gfn(), tfn()
            m = map_computation(tg, topo)
            pf = run_portfolio(gfn(), tfn(), model=MODEL)
            metrics = analyze(m, MODEL)
            out[f"{gname}/{tname}"] = {
                "provenance": m.provenance,
                "assignment": {enc(t): enc(p) for t, p in m.assignment.items()},
                "routes": {
                    f"{ph}#{i}": [enc(p) for p in r]
                    for (ph, i), r in sorted(m.routes.items())
                },
                "routing_rounds": m.routing_rounds,
                "portfolio": {
                    "winner": pf.winner,
                    "completion_time": pf.completion_time,
                    "candidates": [
                        [c.strategy, c.completion_time, c.ok]
                        for c in pf.candidates
                    ],
                },
                "metrics": metrics_to_dict(metrics, m),
            }
    return out


if __name__ == "__main__":
    path = Path(__file__).with_name("equivalence_pr4.json")
    path.write_text(json.dumps(capture(), indent=1, sort_keys=True) + "\n")
    print(f"wrote {path}")
