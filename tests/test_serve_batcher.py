"""Micro-batching: concurrent requests share one supervised fan-out."""

import threading
import time

import pytest

from repro.cli import parse_topology
from repro.errors import SupervisionError, TaskTimeout
from repro.larcs import stdlib
from repro.pipeline import RunConfig, run_pipeline
from repro.serve.batcher import MicroBatcher, PendingRequest


@pytest.fixture
def instance():
    tg = stdlib.load("dnc", m=3)
    return tg, parse_topology("mesh:2x2"), RunConfig(cache=False)


@pytest.fixture
def batcher():
    b = MicroBatcher(window_ms=40.0, executor="thread")
    yield b
    b.close()


class TestBatching:
    def test_single_request_round_trips(self, batcher, instance):
        tg, topology, config = instance
        pending = batcher.submit(tg, topology, config, key="one")
        result = pending.wait(timeout=60)
        direct = run_pipeline(tg, topology, config)
        assert result.mapping.assignment == direct.mapping.assignment

    def test_concurrent_burst_shares_one_batch(self, batcher, instance):
        tg, topology, config = instance
        gate = threading.Barrier(6)
        handles = []
        lock = threading.Lock()

        def submit():
            gate.wait()
            pending = batcher.submit(tg, topology, config)
            with lock:
                handles.append(pending)

        threads = [threading.Thread(target=submit) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        results = [h.wait(timeout=60) for h in handles]
        assert len(results) == 6
        first = results[0].mapping.assignment
        assert all(r.mapping.assignment == first for r in results)
        stats = batcher.stats()
        assert stats["requests"] == 6
        # the whole burst fit inside the 40ms window
        assert stats["batches"] == 1
        assert stats["max_batch"] == 6

    def test_distinct_deadlines_form_sub_batches(self, batcher, instance):
        tg, topology, config = instance
        a = batcher.submit(tg, topology, config, deadline=30.0)
        b = batcher.submit(tg, topology, config, deadline=60.0)
        a.wait(timeout=60)
        b.wait(timeout=60)
        stats = batcher.stats()
        assert stats["sub_batches"] >= 2

    def test_poisoned_request_does_not_take_down_neighbours(
        self, batcher, instance
    ):
        tg, topology, config = instance
        good = batcher.submit(tg, topology, config)
        bad = batcher.submit(None, topology, config)  # unmappable payload
        assert good.wait(timeout=60).mapping is not None
        # the failure surfaces on the poisoned handle only (the worker's
        # own exception, or a supervision wrapper after retries)
        with pytest.raises((SupervisionError, AttributeError)):
            bad.wait(timeout=60)

    def test_deadline_timeout_is_typed(self, instance):
        tg, topology, config = instance
        slow = MicroBatcher(window_ms=0.0, executor="thread")
        try:
            tg_big = stdlib.load("jacobi", rows=16, cols=16, msize=4)
            pending = slow.submit(
                tg_big, parse_topology("mesh:4x4"), config, deadline=0.001
            )
            with pytest.raises((TaskTimeout, SupervisionError)):
                pending.wait(timeout=60)
        finally:
            slow.close()


class TestLifecycle:
    def test_submit_after_close_raises(self, instance):
        tg, topology, config = instance
        batcher = MicroBatcher(window_ms=0.0)
        batcher.close()
        with pytest.raises(RuntimeError, match="closed"):
            batcher.submit(tg, topology, config)

    def test_close_drains_queued_work(self, instance):
        tg, topology, config = instance
        batcher = MicroBatcher(window_ms=50.0)
        pending = batcher.submit(tg, topology, config)
        batcher.close()
        assert pending.wait(timeout=60).mapping is not None

    def test_wait_timeout_raises(self):
        pending = PendingRequest(payload=(), key="never", deadline=None)
        begin = time.monotonic()
        with pytest.raises(TimeoutError, match="never"):
            pending.wait(timeout=0.05)
        assert time.monotonic() - begin < 5

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError, match="window_ms"):
            MicroBatcher(window_ms=-1.0)

    def test_stats_shape(self, batcher):
        stats = batcher.stats()
        assert set(stats) == {
            "batches", "requests", "sub_batches", "max_batch",
            "queued", "mean_batch",
        }
