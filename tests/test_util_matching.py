"""Tests for the matching substrate (repro.util.matching)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.util.matching import (
    exact_max_weight_matching,
    greedy_maximal_matching,
    is_matching,
    is_maximal_matching,
    matching_weight,
    max_weight_matching,
)


def small_weighted_graphs():
    """Hypothesis strategy: random weighted graphs with <= 8 nodes, <= 14 edges."""

    @st.composite
    def build(draw):
        n = draw(st.integers(min_value=2, max_value=8))
        possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
        edges = draw(
            st.lists(st.sampled_from(possible), min_size=1, max_size=min(14, len(possible)), unique=True)
        )
        weights = draw(
            st.lists(
                st.integers(min_value=0, max_value=50),
                min_size=len(edges),
                max_size=len(edges),
            )
        )
        return {e: float(w) for e, w in zip(edges, weights)}

    return build()


class TestGreedyMaximalMatching:
    def test_path_graph(self):
        m = greedy_maximal_matching([(0, 1), (1, 2), (2, 3)])
        assert is_matching(m)
        assert is_maximal_matching(m, [(0, 1), (1, 2), (2, 3)])

    def test_priority_prefers_heavy_edges(self):
        edges = [(0, 1), (1, 2)]
        m = greedy_maximal_matching(edges, priority={(1, 2): 10.0, (0, 1): 1.0})
        assert m == {(1, 2)}

    def test_self_loops_skipped(self):
        assert greedy_maximal_matching([(0, 0), (0, 1)]) == {(0, 1)}

    def test_empty(self):
        assert greedy_maximal_matching([]) == set()

    @given(small_weighted_graphs())
    def test_always_maximal(self, weights):
        edges = list(weights)
        m = greedy_maximal_matching(edges, priority=weights)
        assert is_matching(m)
        assert is_maximal_matching(m, edges)


class TestMaxWeightMatching:
    def test_triangle_takes_heaviest_edge(self):
        weights = {(0, 1): 5.0, (1, 2): 3.0, (0, 2): 4.0}
        m = max_weight_matching(weights)
        assert m == {(0, 1)}

    def test_square_takes_opposite_pair(self):
        weights = {(0, 1): 10.0, (1, 2): 1.0, (2, 3): 10.0, (3, 0): 1.0}
        m = max_weight_matching(weights)
        assert m == {(0, 1), (2, 3)}

    def test_maxcardinality_forces_pairing(self):
        # Without maxcardinality, the heavy edge alone wins; with it, two
        # edges must be chosen.
        weights = {(0, 1): 100.0, (1, 2): 1.0, (0, 3): 1.0, (2, 3): 0.0}
        m = max_weight_matching(weights, maxcardinality=True)
        assert len(m) == 2

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            max_weight_matching({(0, 0): 1.0})

    @settings(max_examples=60, deadline=None)
    @given(small_weighted_graphs())
    def test_agrees_with_exhaustive_search(self, weights):
        m = max_weight_matching(weights)
        exact = exact_max_weight_matching(weights)
        assert is_matching(m)
        assert matching_weight(m, weights) == pytest.approx(
            matching_weight(exact, weights)
        )


class TestExactMatcher:
    def test_refuses_large_inputs(self):
        weights = {(0, i): 1.0 for i in range(1, 26)}
        with pytest.raises(ValueError):
            exact_max_weight_matching(weights)

    def test_simple(self):
        assert exact_max_weight_matching({(0, 1): 2.0}) == {(0, 1)}


class TestPredicates:
    def test_is_matching_rejects_shared_vertex(self):
        assert not is_matching([(0, 1), (1, 2)])

    def test_is_matching_rejects_self_loop(self):
        assert not is_matching([(0, 0)])

    def test_matching_weight_orientation_free(self):
        weights = {(0, 1): 3.0}
        assert matching_weight([(1, 0)], weights) == 3.0

    def test_matching_weight_unknown_edge(self):
        with pytest.raises(KeyError):
            matching_weight([(0, 2)], {(0, 1): 3.0})

    def test_is_maximal_rejects_non_matching(self):
        assert not is_maximal_matching([(0, 1), (1, 2)], [(0, 1), (1, 2)])

    def test_is_maximal_detects_augmentable(self):
        assert not is_maximal_matching([(0, 1)], [(0, 1), (2, 3)])
