"""Tests for the LaRCS lexer."""

import pytest

from repro.larcs.errors import LarcsSyntaxError
from repro.larcs.lexer import tokenize


def kinds(src):
    return [t.kind for t in tokenize(src)]


def values(src):
    return [t.value for t in tokenize(src)[:-1]]


class TestBasics:
    def test_empty(self):
        toks = tokenize("")
        assert len(toks) == 1 and toks[0].kind == "eof"

    def test_keywords_fold_into_kind(self):
        assert kinds("algorithm nodetype comphase")[:3] == [
            "algorithm",
            "nodetype",
            "comphase",
        ]

    def test_identifiers(self):
        toks = tokenize("body cell_2 _tmp")
        assert all(t.kind == "ident" for t in toks[:-1])

    def test_integers(self):
        toks = tokenize("0 42 1000")
        assert [t.value for t in toks[:-1]] == ["0", "42", "1000"]
        assert all(t.kind == "int" for t in toks[:-1])

    def test_keyword_prefix_identifier(self):
        # 'formula' starts with 'for' but is an identifier.
        toks = tokenize("formula")
        assert toks[0].kind == "ident"


class TestSymbols:
    def test_maximal_munch(self):
        assert kinds("-> .. ** || == != <= >=")[:-1] == [
            "->",
            "..",
            "**",
            "||",
            "==",
            "!=",
            "<=",
            ">=",
        ]

    def test_range_vs_dots(self):
        assert kinds("0..n")[:-1] == ["int", "..", "ident"]

    def test_minus_vs_arrow(self):
        assert kinds("a - b -> c")[:-1] == ["ident", "-", "ident", "->", "ident"]

    def test_power_vs_times(self):
        assert kinds("a ** b * c")[:-1] == ["ident", "**", "ident", "*", "ident"]

    def test_caret(self):
        assert kinds("a^2")[:-1] == ["ident", "^", "int"]


class TestCommentsAndPositions:
    def test_dash_comment(self):
        assert values("a -- comment here\nb") == ["a", "b"]

    def test_hash_comment(self):
        assert values("a # comment\nb") == ["a", "b"]

    def test_line_numbers(self):
        toks = tokenize("a\nb\n  c")
        assert [(t.line, t.col) for t in toks[:-1]] == [(1, 1), (2, 1), (3, 3)]

    def test_bad_character(self):
        with pytest.raises(LarcsSyntaxError) as exc:
            tokenize("a $ b")
        assert "line 1" in str(exc.value)

    def test_comment_to_eof(self):
        assert values("a -- no newline at end") == ["a"]
