"""Tests for the LaRCS standard library programs.

Each stdlib program is cross-checked against the directly constructed graph
family where one exists -- the LaRCS route and the programmatic route must
produce identical edge sets.
"""

import pytest

from repro.graph import families
from repro.graph.properties import comm_functions
from repro.larcs import stdlib


class TestRegistry:
    def test_all_programs_compile(self):
        params = {
            "nbody": dict(n=7),
            "jacobi": dict(rows=3, cols=3),
            "sor": dict(rows=3, cols=3),
            "fft": dict(m=3),
            "dnc": dict(m=3),
            "cannon": dict(q=3),
            "voting": dict(m=3),
            "pipeline": dict(n=4),
            "annealing": dict(rows=3, cols=3),
            "oddeven": dict(n=6),
            "bitonic": dict(m=3),
            "gauss": dict(n=5),
        }
        assert set(params) == set(stdlib.PROGRAMS)
        for name, kw in params.items():
            tg = stdlib.load(name, **kw)
            tg.validate()
            assert tg.n_tasks > 0

    def test_unknown_program(self):
        with pytest.raises(KeyError):
            stdlib.load("quicksort")


class TestNbody:
    def test_matches_family(self):
        lar = stdlib.load("nbody", n=15)
        fam = families.nbody(15)
        for phase in ("ring", "chordal"):
            assert set(lar.comm_phase(phase).pairs()) == set(
                fam.comm_phase(phase).pairs()
            )

    def test_phase_expression_length(self):
        tg = stdlib.load("nbody", n=7, sweeps=2)
        # ((ring; compute1)^4; chordal; compute2)^2 -> 2*(2*4+2) = 20 steps.
        assert len(tg.phase_expr.linearize()) == 20

    def test_volume_import(self):
        tg = stdlib.load("nbody", n=7, msize=64)
        assert tg.comm_phase("ring").edges[0].volume == 64.0

    def test_description_size_independent_of_n(self):
        # The Section 2 compactness claim: same source, any n.
        small = stdlib.load("nbody", n=7)
        large = stdlib.load("nbody", n=1023)
        assert small.n_tasks == 7 and large.n_tasks == 1023


class TestJacobiSor:
    def test_jacobi_matches_mesh_family(self):
        lar = stdlib.load("jacobi", rows=4, cols=5)
        fam = families.mesh(4, 5)
        # Same static structure modulo the label representation.
        to_int = lambda t: t[0] * 5 + t[1]
        for phase in ("north", "south", "east", "west"):
            got = {(to_int(u), to_int(v)) for u, v in lar.comm_phase(phase).pairs()}
            assert got == set(fam.comm_phase(phase).pairs())

    def test_jacobi_no_warnings(self):
        from repro.larcs.compiler import compile_larcs

        res = compile_larcs(stdlib.JACOBI, rows=3, cols=4)
        assert res.warnings == []

    def test_sor_single_exchange_phase(self):
        tg = stdlib.load("sor", rows=3, cols=3)
        assert list(tg.comm_phases) == ["exchange"]
        assert len(tg.comm_phase("exchange")) == 24

    def test_jacobi_relax_cost(self):
        tg = stdlib.load("jacobi", rows=2, cols=2)
        assert tg.exec_phase("relax").cost_of((0, 0)) == 4.0


class TestFftVoting:
    def test_fft_phases_match_family(self):
        lar = stdlib.load("fft", m=4)
        fam = families.fft_butterfly(16)
        for s in range(4):
            assert set(lar.comm_phase(f"fly[{s}]").pairs()) == set(
                fam.comm_phase(f"fly{s}").pairs()
            )

    def test_voting_m3_reproduces_fig4_generators(self):
        tg = stdlib.load("voting", m=3)
        perms = comm_functions(tg)
        assert str(perms["hop[0]"]) == "(01234567)"
        assert str(perms["hop[1]"]) == "(0246)(1357)"
        assert str(perms["hop[2]"]) == "(04)(15)(26)(37)"

    def test_voting_phase_expr(self):
        tg = stdlib.load("voting", m=3)
        steps = tg.phase_expr.linearize()
        assert len(steps) == 6  # (hop[k]; tally) for k = 0, 1, 2


class TestDnc:
    def test_matches_binomial_tree(self):
        lar = stdlib.load("dnc", m=5)
        fam = families.binomial_tree(5)
        assert set(lar.comm_phase("divide").pairs()) == set(
            fam.comm_phase("divide").pairs()
        )
        assert set(lar.comm_phase("combine").pairs()) == set(
            fam.comm_phase("combine").pairs()
        )

    def test_combine_reverses_divide(self):
        tg = stdlib.load("dnc", m=4)
        div = set(tg.comm_phase("divide").pairs())
        com = set(tg.comm_phase("combine").pairs())
        assert com == {(v, u) for u, v in div}


class TestCannonPipeline:
    def test_cannon_shift_phases_are_bijections(self):
        tg = stdlib.load("cannon", q=4)
        for phase in ("shiftA", "shiftB"):
            fn = tg.comm_function(phase)
            assert fn is not None and len(fn) == 16
            assert sorted(fn.values()) == sorted(fn.keys())

    def test_cannon_phase_expr_parallel_shifts(self):
        tg = stdlib.load("cannon", q=2)
        steps = tg.phase_expr.linearize()
        assert steps[0] == frozenset({"shiftA", "shiftB"})
        assert len(steps) == 4

    def test_pipeline_chain(self):
        tg = stdlib.load("pipeline", n=5)
        assert tg.comm_phase("forward").pairs() == [(i, i + 1) for i in range(4)]

    def test_pipeline_alternating_costs(self):
        tg = stdlib.load("pipeline", n=4)
        w = tg.exec_phase("work")
        assert w.cost_of(0) == 1.0 and w.cost_of(1) == 2.0

    def test_annealing_torus_degree(self):
        tg = stdlib.load("annealing", rows=3, cols=4)
        g = tg.static_graph()
        assert all(d == 4 for _, d in g.degree())


class TestSortsAndGauss:
    def test_oddeven_exchange_pairs(self):
        tg = stdlib.load("oddeven", n=8)
        oddx = set(tg.comm_phase("oddx").pairs())
        evenx = set(tg.comm_phase("evenx").pairs())
        # Odd phase: pairs (1,2), (3,4), (5,6), both directions.
        assert oddx == {(a, b) for x in (1, 3, 5) for a, b in [(x, x + 1), (x + 1, x)]}
        # Even phase: pairs (0,1), (2,3), (4,5), (6,7).
        assert evenx == {
            (a, b) for x in (0, 2, 4, 6) for a, b in [(x, x + 1), (x + 1, x)]
        }

    def test_oddeven_round_count(self):
        tg = stdlib.load("oddeven", n=8)
        # (oddx; compare; evenx; compare)^ceil(n/2) -> 4 * 4 steps.
        assert len(tg.phase_expr.linearize()) == 16

    def test_bitonic_stage_count_and_bits(self):
        m = 4
        tg = stdlib.load("bitonic", m=m)
        stages = m * (m + 1) // 2
        assert len(tg.comm_phases) == stages
        # The flat stage index decodes to the bitonic bit sequence:
        # 0; 1,0; 2,1,0; 3,2,1,0.
        expected_bits = [j for k in range(m) for j in range(k, -1, -1)]
        for s, expect_j in enumerate(expected_bits):
            fn = tg.comm_function(f"cmpx[{s}]")
            assert fn[0] == (0 ^ (1 << expect_j))
            # Every stage is a perfect pairing of all n keys.
            assert sorted(fn) == list(range(1 << m))

    def test_bitonic_stages_are_involutions(self):
        tg = stdlib.load("bitonic", m=3)
        for name in tg.comm_phases:
            fn = tg.comm_function(name)
            assert all(fn[fn[i]] == i for i in fn)

    def test_gauss_broadcast_structure(self):
        tg = stdlib.load("gauss", n=6)
        for k in range(5):
            pairs = tg.comm_phase(f"bcast[{k}]").pairs()
            assert pairs == [(k, r) for r in range(k + 1, 6)]

    def test_gauss_cost_decreases_with_row(self):
        tg = stdlib.load("gauss", n=6)
        elim = tg.exec_phase("eliminate")
        assert elim.cost_of(0) > elim.cost_of(5)

    def test_gauss_maps_and_simulates(self):
        from repro.arch import networks
        from repro.mapper import map_computation
        from repro.sim import CostModel, simulate

        tg = stdlib.load("gauss", n=8)
        m = map_computation(tg, networks.hypercube(2))
        res = simulate(m, CostModel(exec_time=0.1))
        assert res.total_time > 0
