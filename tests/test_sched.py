"""Tests for the scheduling extension (repro.sched)."""

import pytest

from repro.arch import networks
from repro.graph import families
from repro.larcs import stdlib
from repro.mapper import map_computation
from repro.sched import (
    SynchronySets,
    build_directives,
    derive_synchrony_sets,
    partner_misalignment,
    schedule_skew,
)


def nbody_mapping():
    return map_computation(families.nbody(15), networks.hypercube(3))


class TestSynchronySets:
    def test_every_task_slotted(self):
        m = nbody_mapping()
        sets = derive_synchrony_sets(m)
        assert set(sets.slots) == set(m.task_graph.nodes)
        sets.validate(m)

    def test_one_task_per_processor_per_slot(self):
        m = nbody_mapping()
        sets = derive_synchrony_sets(m)
        for group in sets.sets:
            procs = [m.proc_of(t) for t in group]
            assert len(procs) == len(set(procs))

    def test_singleton_clusters_all_slot_zero(self):
        m = map_computation(families.ring(8), networks.hypercube(3))
        sets = derive_synchrony_sets(m)
        assert all(slot == 0 for slot in sets.slots.values())
        assert len(sets.sets) == 1

    def test_validate_catches_missing(self):
        m = nbody_mapping()
        good = derive_synchrony_sets(m)
        del good.slots[m.task_graph.nodes[-1]]
        with pytest.raises(ValueError, match="no synchrony slot"):
            good.validate(m)

    def test_validate_catches_collision(self):
        m = nbody_mapping()
        sets = SynchronySets({t: 0 for t in m.task_graph.nodes})
        with pytest.raises(ValueError, match="share slot"):
            sets.validate(m)

    def test_deterministic(self):
        m = nbody_mapping()
        assert derive_synchrony_sets(m).slots == derive_synchrony_sets(m).slots


def label_order_sets(m):
    slots = {}
    for proc, tasks in m.clusters().items():
        for i, t in enumerate(sorted(tasks, key=repr)):
            slots[t] = i
    return SynchronySets(slots)


class TestPartnerMisalignment:
    def random_mapping(self, n=31, dim=3, seed=2):
        from repro.mapper.contraction import random_contract
        from repro.mapper.embedding import assignment_from_clusters, nn_embed
        from repro.mapper.mapping import Mapping
        from repro.mapper.routing import mm_route

        tg = families.nbody(n)
        topo = networks.hypercube(dim)
        clusters = random_contract(tg, topo.n_processors, seed=seed)
        placement = nn_embed(tg, clusters, topo)
        m = Mapping(tg, topo, assignment_from_clusters(clusters, placement))
        m.routes = mm_route(tg, topo, m.assignment).routes
        return m

    def test_derived_beats_label_order_on_random_clusters(self):
        m = self.random_mapping()
        derived_gap = partner_misalignment(m, derive_synchrony_sets(m))
        naive_gap = partner_misalignment(m, label_order_sets(m))
        assert derived_gap <= naive_gap

    def test_zero_when_one_task_per_proc(self):
        m = map_computation(families.ring(8), networks.hypercube(3))
        sets = derive_synchrony_sets(m)
        assert partner_misalignment(m, sets) == 0.0

    def test_intra_processor_edges_ignored(self):
        m = map_computation(families.ring(4), networks.ring(1))
        sets = derive_synchrony_sets(m)
        assert partner_misalignment(m, sets) == 0.0


class TestScheduleSkew:
    def test_label_order_has_zero_drift(self):
        # Gapless slot assignment + uniform costs: offsets equal slots, and
        # each set holds only one slot, so drift is structurally zero.
        m = map_computation(families.ring(16), networks.hypercube(3), strategy="mwm")
        assert schedule_skew(m, label_order_sets(m)) == 0.0

    def test_skew_zero_when_one_task_per_proc(self):
        m = map_computation(families.ring(8), networks.hypercube(3))
        sets = derive_synchrony_sets(m)
        assert schedule_skew(m, sets) == 0.0

    def test_skew_specific_phase(self):
        m = nbody_mapping()
        sets = derive_synchrony_sets(m)
        assert schedule_skew(m, sets, "compute1") >= 0.0

    def test_no_exec_phases(self):
        tg = families.ring(4)
        tg._exec_phases.clear()
        tg.phase_expr = None
        m = map_computation(tg, networks.ring(4))
        sets = derive_synchrony_sets(m)
        assert schedule_skew(m, sets) == 0.0


class TestDirectives:
    def test_structure(self):
        m = nbody_mapping()
        schedules = build_directives(m)
        assert set(schedules) == set(m.topology.processors)
        steps = m.task_graph.phase_expr.linearize()
        for sched in schedules.values():
            assert len(sched.steps) == len(steps)

    def test_exec_steps_cover_all_local_tasks(self):
        m = nbody_mapping()
        schedules = build_directives(m)
        steps = m.task_graph.phase_expr.linearize()
        exec_steps = [i for i, s in enumerate(steps) if "compute1" in s]
        i = exec_steps[0]
        for proc, sched in schedules.items():
            tasks = {t for t, _ in sched.steps[i]}
            assert tasks == set(m.tasks_on(proc))

    def test_comm_steps_empty(self):
        m = nbody_mapping()
        schedules = build_directives(m)
        steps = m.task_graph.phase_expr.linearize()
        ring_step = next(i for i, s in enumerate(steps) if s == frozenset({"ring"}))
        for sched in schedules.values():
            assert sched.steps[ring_step] == []

    def test_path_expression_notation(self):
        m = nbody_mapping()
        schedules = build_directives(m)
        steps = m.task_graph.phase_expr.linearize()
        i = next(i for i, s in enumerate(steps) if "compute1" in s)
        proc = next(p for p in m.topology.processors if len(m.tasks_on(p)) == 2)
        expr = schedules[proc].path_expression(i)
        assert expr.startswith("path (") and expr.endswith(") end")
        assert ".compute1" in expr and " ; " in expr

    def test_empty_step_renders(self):
        m = nbody_mapping()
        schedules = build_directives(m)
        sched = next(iter(schedules.values()))
        assert "path end" in sched.path_expression(0) or "path (" in sched.path_expression(0)

    def test_render(self):
        m = nbody_mapping()
        schedules = build_directives(m)
        text = schedules[0].render()
        assert text.startswith("processor 0:")
        assert "step 0:" in text

    def test_slot_order_respected(self):
        m = nbody_mapping()
        sets = derive_synchrony_sets(m)
        schedules = build_directives(m, sets)
        steps = m.task_graph.phase_expr.linearize()
        i = next(i for i, s in enumerate(steps) if "compute1" in s)
        for proc, sched in schedules.items():
            tasks = [t for t, _ in sched.steps[i]]
            slots = [sets.slots[t] for t in tasks]
            assert slots == sorted(slots)
