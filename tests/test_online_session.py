"""Continuous-operation mapping sessions (repro.online.session)."""

import pytest

from repro.arch import networks
from repro.graph.taskgraph import TaskGraph
from repro.online import (
    Arrival,
    Departure,
    Drift,
    Fault,
    MappingSession,
    Recovery,
    SessionConfig,
    generate_scenario,
    mapping_fingerprint,
)
from repro.pipeline.cache import ArtifactCache
from repro.resilience import FaultSet


def _ring(n=6):
    tg = TaskGraph("online-ring")
    for i in range(n):
        tg.add_node(i, 1.0)
    phase = tg.add_comm_phase("ring")
    for i in range(n):
        phase.add(i, (i + 1) % n, 1.0)
    tg.add_exec_phase("work", 1.0)
    return tg


def _session(config=None, topo=None, **kwargs):
    return MappingSession(
        _ring(), topo if topo is not None else networks.mesh(2, 3),
        config, **kwargs
    )


class TestSessionConfig:
    def test_defaults_valid(self):
        SessionConfig()

    @pytest.mark.parametrize("bad", [
        {"drift_threshold": 0.0},
        {"clear_threshold": -0.1},
        {"clear_threshold": 0.5, "drift_threshold": 0.25},
        {"cooldown_events": -1},
        {"amortize_events": 0},
        {"checkpoint_every": -1},
    ])
    def test_bad_knobs_rejected(self, bad):
        with pytest.raises(ValueError):
            SessionConfig(**bad)

    def test_round_trip(self):
        cfg = SessionConfig(strategy="mwm", drift_threshold=0.5,
                            strategies=("mwm", "greedy"))
        assert SessionConfig.from_dict(cfg.to_dict()) == cfg

    def test_from_dict_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown session config"):
            SessionConfig.from_dict({"spin": 1})

    def test_canonical_dict_excludes_execution_knobs(self):
        cfg = SessionConfig(executor="thread", max_workers=7,
                            event_deadline_s=0.5, checkpoint_every=3)
        canon = cfg.canonical_dict()
        for key in ("executor", "max_workers", "event_deadline_s",
                    "checkpoint_every"):
            assert key not in canon


class TestEventHandling:
    def test_initial_mapping_valid(self):
        s = _session()
        s.mapping.validate(require_routes=True)
        assert s.baseline > 0

    def test_arrival_places_and_routes(self):
        s = _session()
        record = s.apply(Arrival(
            task="new", weight=1.0, edges=(("ring", 0, "new", 2.0),)
        ))
        assert record.action == "placed"
        assert "new" in s.mapping.assignment
        s.mapping.validate(require_routes=True)

    def test_arrival_unknown_phase_rejected(self):
        s = _session()
        with pytest.raises((ValueError, KeyError)):
            s.apply(Arrival(task="new", edges=(("nope", 0, "new", 1.0),)))

    def test_arrival_unknown_peer_rejected(self):
        s = _session()
        with pytest.raises((ValueError, KeyError)):
            s.apply(Arrival(task="new", edges=(("ring", "ghost", "new", 1.0),)))

    def test_departure_removes_task_and_routes(self):
        s = _session()
        s.apply(Arrival(task="new", edges=(("ring", 0, "new", 1.0),)))
        record = s.apply(Departure(task="new"))
        assert record.action == "removed"
        assert "new" not in s.mapping.assignment
        s.mapping.validate(require_routes=True)

    def test_departure_rekeys_surviving_routes(self):
        # Dropping task 0 removes two ring edges; the remaining edges'
        # indices shift but their routes must stay attached correctly.
        s = _session()
        s.apply(Departure(task=0))
        s.mapping.validate(require_routes=True)
        tg = s.mapping.task_graph
        assert 0 not in tg.nodes
        assert set(s.mapping.routes) == {
            ("ring", i) for i in range(len(tg.comm_phase("ring").edges))
        }

    def test_drift_reweights(self):
        s = _session()
        before = s.mapping.routes[("ring", 0)]
        record = s.apply(Drift(phase="ring", updates=((0, 1, 8.0),)))
        assert record.action == "reweighted"
        tg = s.mapping.task_graph
        edge = tg.comm_phase("ring").edges[0]
        assert edge.volume == 8.0
        assert s.mapping.routes[("ring", 0)] == before  # route untouched

    def test_drift_on_missing_edge_rejected(self):
        s = _session()
        with pytest.raises(ValueError):
            s.apply(Drift(phase="ring", updates=((0, 3, 1.0),)))

    def test_fault_repairs_onto_survivors(self):
        s = _session()
        victim = s.mapping.topology.processors[0]
        record = s.apply(Fault(faults=FaultSet(failed_procs=[victim])))
        assert record.action.startswith("repaired-")
        assert victim not in set(s.mapping.assignment.values())
        s.mapping.validate(require_routes=True)
        assert s.machine.n_processors == 5

    def test_recovery_restores_machine(self):
        s = _session()
        fs = FaultSet(failed_procs=[s.mapping.topology.processors[0]])
        s.apply(Fault(faults=fs))
        record = s.apply(Recovery(faults=fs))
        assert record.action == "recovered"
        assert s.machine.n_processors == 6
        assert s.faults == FaultSet()
        s.mapping.validate(require_routes=True)

    def test_degraded_link_fault_and_recovery(self):
        s = _session()
        link = tuple(sorted(next(iter(s.machine.links))))
        fs = FaultSet(degraded_links=[(link, 2.0)])
        s.apply(Fault(faults=fs))
        assert s.machine.link_slowdowns
        s.apply(Recovery(faults=fs))
        assert not s.machine.link_slowdowns

    def test_recovering_inactive_fault_rejected(self):
        s = _session()
        with pytest.raises(ValueError, match="not failed"):
            s.apply(Recovery(faults=FaultSet(failed_procs=[0])))

    def test_counters_track_kinds(self):
        s = _session()
        s.apply(Arrival(task="x"))
        s.apply(Arrival(task="y"))
        s.apply(Departure(task="x"))
        assert s.counters["events_arrival"] == 2
        assert s.counters["events_departure"] == 1


class TestRemapAndHotSwap:
    def test_drift_triggers_background_remap(self):
        cfg = SessionConfig(drift_threshold=0.01, clear_threshold=0.0,
                            cooldown_events=0, amortize_events=500,
                            checkpoint_every=0)
        s = _session(cfg)
        # Crank one edge hard enough that quality drifts past 1%.
        for volume in (50.0, 100.0):
            s.apply(Drift(phase="ring", updates=((0, 1, volume),)))
        assert s.counters.get("remaps_triggered", 0) >= 1
        triggered = [r for r in s.trace if (r.remap or {}).get("triggered")]
        assert triggered
        decision = triggered[0].remap
        assert decision["outcome"] == "ok"
        assert {"candidate_cost", "migration_cost", "swapped"} <= set(decision)

    def test_swap_only_when_amortized_gain_pays(self):
        # amortize_events=1 makes almost any migration unprofitable for a
        # marginal gain; the session must record the decision either way
        # and keep serving a valid mapping.
        cfg = SessionConfig(drift_threshold=0.01, clear_threshold=0.0,
                            cooldown_events=0, amortize_events=1,
                            checkpoint_every=0)
        s = _session(cfg)
        for volume in (50.0, 100.0):
            s.apply(Drift(phase="ring", updates=((0, 1, volume),)))
        for record in s.trace:
            if (record.remap or {}).get("triggered"):
                if record.remap["swapped"]:
                    gain = record.remap["amortized_gain"]
                    assert gain > record.remap["migration_cost"]
        s.mapping.validate(require_routes=True)

    def test_cooldown_suppresses_retrigger(self):
        cfg = SessionConfig(drift_threshold=0.01, clear_threshold=0.0,
                            cooldown_events=50, checkpoint_every=0)
        s = _session(cfg)
        for volume in (50.0, 100.0, 150.0, 200.0):
            s.apply(Drift(phase="ring", updates=((0, 1, volume),)))
        assert s.counters.get("remaps_triggered", 0) <= 1


class TestDeterminism:
    def test_trace_identical_across_executors(self):
        tg, topo = _ring(), networks.mesh(2, 3)
        scn = generate_scenario(tg, topo, seed=13, n_events=30)
        fps = []
        for executor, workers in (("serial", None), ("thread", 4)):
            cfg = SessionConfig(executor=executor, max_workers=workers,
                                drift_threshold=0.05, clear_threshold=0.0,
                                cooldown_events=1, checkpoint_every=0)
            s = MappingSession(tg, topo, cfg)
            report = s.run(scn.events)
            fps.append((report.trace_fingerprint,
                        report.final_mapping_fingerprint))
        assert fps[0] == fps[1]

    def test_trace_fp_ignores_wall_clock(self):
        tg, topo = _ring(), networks.mesh(2, 3)
        scn = generate_scenario(tg, topo, seed=8, n_events=15)
        fast = MappingSession(tg, topo, SessionConfig(checkpoint_every=0))
        slow = MappingSession(
            tg, topo,
            SessionConfig(checkpoint_every=0, event_deadline_s=1e-12),
        )
        a = fast.run(scn.events)
        b = slow.run(scn.events)
        # Every event blows a 1 ps budget; the canonical trace must not
        # care, only the diagnostic channel does.
        assert any(r.deadline_exceeded for r in b.records)
        assert a.trace_fingerprint == b.trace_fingerprint

    def test_mapping_fingerprint_stable(self):
        s = _session()
        assert mapping_fingerprint(s.mapping) == mapping_fingerprint(s.mapping)


class TestCheckpointResume:
    def test_resume_matches_uninterrupted(self, tmp_path):
        tg, topo = _ring(), networks.mesh(2, 3)
        scn = generate_scenario(tg, topo, seed=21, n_events=24)
        cfg = SessionConfig(drift_threshold=0.1, cooldown_events=2)

        full_cache = ArtifactCache(str(tmp_path / "full"))
        uninterrupted = MappingSession(tg, topo, cfg, cache=full_cache)
        want = uninterrupted.run(scn.events)

        part_cache = ArtifactCache(str(tmp_path / "part"))
        killed = MappingSession(tg, topo, cfg, cache=part_cache)
        for event in scn.events[:11]:
            killed.apply(event)
        # ... the process dies here; a fresh session over the same cache
        # resumes from the deepest matching checkpoint.
        resumed = MappingSession(tg, topo, cfg, cache=part_cache)
        got = resumed.run(scn.events, resume="auto")
        assert got.resumed_at == 11
        assert got.trace_fingerprint == want.trace_fingerprint
        assert got.final_mapping_fingerprint == want.final_mapping_fingerprint
        assert got.final_comm_cost == want.final_comm_cost

    def test_resume_ignores_mismatched_event_stream(self, tmp_path):
        tg, topo = _ring(), networks.mesh(2, 3)
        cache = ArtifactCache(str(tmp_path / "ck"))
        cfg = SessionConfig()
        first = MappingSession(tg, topo, cfg, cache=cache)
        first.apply(Arrival(task="a"))
        first.apply(Arrival(task="b"))
        # A different stream sharing no prefix must start from scratch.
        other = MappingSession(tg, topo, cfg, cache=cache)
        report = other.run([Arrival(task="z")], resume="auto")
        assert report.resumed_at is None

    def test_resume_uses_longest_shared_prefix(self, tmp_path):
        tg, topo = _ring(), networks.mesh(2, 3)
        cache = ArtifactCache(str(tmp_path / "ck"))
        cfg = SessionConfig()
        first = MappingSession(tg, topo, cfg, cache=cache)
        events = [Arrival(task="a"), Arrival(task="b"), Arrival(task="c")]
        for event in events:
            first.apply(event)
        fork = events[:2] + [Departure(task="a")]
        other = MappingSession(tg, topo, cfg, cache=cache)
        report = other.run(fork, resume="auto")
        assert report.resumed_at == 2

    def test_config_change_invalidates_checkpoints(self, tmp_path):
        tg, topo = _ring(), networks.mesh(2, 3)
        cache = ArtifactCache(str(tmp_path / "ck"))
        first = MappingSession(tg, topo, SessionConfig(), cache=cache)
        first.apply(Arrival(task="a"))
        other = MappingSession(
            tg, topo, SessionConfig(drift_threshold=0.5), cache=cache
        )
        report = other.run([Arrival(task="a")], resume="auto")
        assert report.resumed_at is None  # different session key

    def test_checkpoint_every_zero_never_journals(self, tmp_path):
        cache = ArtifactCache(str(tmp_path / "ck"))
        s = _session(SessionConfig(checkpoint_every=0), cache=cache)
        s.apply(Arrival(task="a"))
        assert "checkpoints" not in s.counters

    def test_bad_resume_mode_rejected(self):
        s = _session()
        with pytest.raises(ValueError, match="resume"):
            s.run([], resume="maybe")


class TestReport:
    def test_report_document(self):
        tg, topo = _ring(), networks.mesh(2, 3)
        scn = generate_scenario(tg, topo, seed=1, n_events=10)
        s = MappingSession(tg, topo, SessionConfig(checkpoint_every=0))
        report = s.run(scn.events)
        doc = report.to_dict()
        assert doc["format"] == "oregami-online-report-v1"
        assert doc["events"] == 10
        assert "trace" not in doc
        with_trace = report.to_dict(include_trace=True)
        assert len(with_trace["trace"]) == 10
        record = with_trace["trace"][0]
        assert {"index", "kind", "action", "comm_cost", "drift",
                "elapsed_ms"} <= set(record)

    def test_on_event_callback_sees_every_record(self):
        tg, topo = _ring(), networks.mesh(2, 3)
        scn = generate_scenario(tg, topo, seed=1, n_events=8)
        seen = []
        s = MappingSession(tg, topo, SessionConfig(checkpoint_every=0))
        s.run(scn.events, on_event=seen.append)
        assert [r.index for r in seen] == list(range(8))


class TestCapacityMachines:
    def test_session_respects_capacity_vectors(self):
        from repro.arch.capacity import Capacities
        from repro.arch.hierarchy import with_capacities

        base = networks.mesh(2, 3)
        topo = with_capacities(
            base,
            Capacities.from_spec(
                {"slots": {"demand": "unit", "cap": 8.0},
                 "mem": {"demand": "weight", "cap": 12.0}},
                base.processors,
            ),
        )
        tg = _ring()
        scn = generate_scenario(tg, topo, seed=17, n_events=25)
        s = MappingSession(tg, topo, SessionConfig(checkpoint_every=0))
        s.run(scn.events)
        # validate() enforces the vectors on the final served mapping.
        s.mapping.validate(require_routes=True)
