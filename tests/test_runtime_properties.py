"""Property-based tests for the supervised runtime's determinism claims.

The runtime promises that everything *semantic* -- values, statuses,
attempt traces, and therefore winners and rankings -- is a pure function
of (payloads, retry policy, chaos plan): never of the executor, the
worker count, scheduling, or whether the run was interrupted and
resumed.  Hypothesis drives randomly generated chaos schedules and retry
policies through those claims.
"""

from hypothesis import given, settings, strategies as st

from repro.pipeline import ArtifactCache
from repro.runtime import ChaosPlan, Journal, RetryPolicy, run_supervised

_MAX_TASKS = 5
_MAX_ATTEMPTS = 3


def _work(x):
    return x * x + 1


def _projection(results):
    """Everything that must be identical across executors/workers/resume."""
    return [
        (r.index, r.key, r.status, r.value, r.trace(),
         None if r.error is None else (type(r.error).__name__, str(r.error)))
        for r in results
    ]


@st.composite
def _schedules(draw):
    """(payloads, retry policy, chaos plan) for one supervised fan-out."""
    n = draw(st.integers(min_value=1, max_value=_MAX_TASKS))
    max_attempts = draw(st.integers(min_value=1, max_value=_MAX_ATTEMPTS))
    pair = st.tuples(
        st.integers(min_value=0, max_value=n - 1),
        st.integers(min_value=1, max_value=max_attempts),
    )
    pairs = st.sets(pair, max_size=n)
    chaos = ChaosPlan(
        crashes=draw(pairs), transients=draw(pairs), hang_s=0.0
    )
    retry = RetryPolicy(
        max_attempts=max_attempts,
        backoff=0.0005,
        seed=draw(st.integers(min_value=0, max_value=3)),
    )
    return list(range(n)), retry, chaos


@settings(max_examples=25, deadline=None)
@given(_schedules())
def test_outcomes_identical_across_executors_and_worker_counts(schedule):
    payloads, retry, chaos = schedule
    reference = _projection(
        run_supervised(_work, payloads, retry=retry, chaos=chaos)
    )
    for max_workers in (1, 2, len(payloads)):
        got = run_supervised(
            _work, payloads, executor="thread", max_workers=max_workers,
            retry=retry, chaos=chaos,
        )
        assert _projection(got) == reference


@settings(max_examples=25, deadline=None)
@given(_schedules(), st.data())
def test_interrupted_and_resumed_equals_uninterrupted(schedule, data):
    payloads, retry, chaos = schedule
    uninterrupted = _projection(
        run_supervised(_work, payloads, retry=retry, chaos=chaos)
    )

    # "Kill" the run after the first k tasks: journal only those, then
    # re-invoke over the full payload list with the same journal.
    k = data.draw(
        st.integers(min_value=0, max_value=len(payloads)), label="kill_after"
    )
    journal = Journal(ArtifactCache(), "property-run")
    run_supervised(
        _work, payloads[:k], keys=[f"task:{i}" for i in range(k)],
        retry=retry, chaos=chaos, journal=journal,
    )
    resumed = run_supervised(
        _work, payloads, retry=retry, chaos=chaos, journal=journal
    )
    assert [r.journal_hit for r in resumed] == [i < k for i in range(len(payloads))]
    assert _projection(resumed) == uninterrupted
