"""Tests for the §6 extensions: aggregation selection and migration analysis."""

import pytest

from repro.arch import networks
from repro.graph import families
from repro.larcs import stdlib
from repro.mapper import map_computation
from repro.mapper.aggregate import add_aggregation_phase, select_aggregation_tree
from repro.mapper.migration import evaluate_migration, segment_mappings
from repro.sim import CostModel


class TestAggregationTree:
    def make(self):
        return map_computation(families.nbody(15), networks.hypercube(3))

    def test_paths_reach_root(self):
        m = self.make()
        paths = select_aggregation_tree(m, root=0)
        root_proc = m.proc_of(0)
        for proc, path in paths.items():
            assert path[0] == proc and path[-1] == root_proc
            assert m.topology.is_valid_route(path)

    def test_root_path_trivial(self):
        m = self.make()
        paths = select_aggregation_tree(m, root=0)
        assert paths[m.proc_of(0)] == [m.proc_of(0)]

    def test_congestion_avoidance(self):
        # With heavy congestion weighting the tree must not be *worse* on
        # hot links than the congestion-blind tree.
        m = self.make()
        from repro.mapper.aggregate import _existing_link_load

        load = _existing_link_load(m)
        hot = max(load, key=load.get)

        def hot_usage(paths):
            return sum(
                1
                for path in paths.values()
                for a, b in zip(path, path[1:])
                if m.topology.link_id(a, b) == hot
            )

        aware = select_aggregation_tree(m, 0, congestion_weight=10.0)
        blind = select_aggregation_tree(m, 0, congestion_weight=0.0)
        assert hot_usage(aware) <= hot_usage(blind)

    def test_add_aggregation_phase(self):
        m = self.make()
        add_aggregation_phase(m, root=0, volume=2.0)
        tg = m.task_graph
        assert "aggregate" in tg.comm_phases
        assert len(tg.comm_phase("aggregate")) == 14
        m.validate()
        # Every aggregation edge has a route attached.
        for idx in range(14):
            assert ("aggregate", idx) in m.routes

    def test_duplicate_phase_rejected(self):
        m = self.make()
        add_aggregation_phase(m, root=0)
        with pytest.raises(ValueError):
            add_aggregation_phase(m, root=0)

    def test_works_on_mesh(self):
        m = map_computation(stdlib.load("jacobi", rows=4, cols=4), networks.mesh(2, 2))
        add_aggregation_phase(m, root=(0, 0), phase_name="reduce_all")
        m.validate()


class TestSegmentMappings:
    def test_one_mapping_per_segment(self):
        tg = families.nbody(15)
        topo = networks.hypercube(3)
        segs = [{"ring", "compute1"}, {"chordal", "compute2"}]
        maps = segment_mappings(tg, topo, segs)
        assert len(maps) == 2
        for m in maps:
            assert set(m.assignment) == set(tg.nodes)

    def test_segment_optimised_for_its_phase(self):
        # The chordal-only segment should place chordal partners closer (on
        # average) than the ring-optimised canned mapping does.
        tg = families.nbody(15)
        topo = networks.hypercube(3)
        segs = [{"ring", "compute1"}, {"chordal", "compute2"}]
        maps = segment_mappings(tg, topo, segs)

        def chordal_distance(m):
            return sum(
                topo.distance(m.proc_of(e.src), m.proc_of(e.dst))
                for e in tg.comm_phase("chordal").edges
            )

        assert chordal_distance(maps[1]) <= chordal_distance(maps[0])


class TestEvaluateMigration:
    def test_plan_structure(self):
        tg = families.nbody(15)
        topo = networks.hypercube(3)
        plan = evaluate_migration(
            tg,
            topo,
            [{"ring", "compute1"}, {"chordal", "compute2"}],
            state_volume=0.5,
        )
        assert plan.static_time > 0
        assert plan.migratory_time > 0
        assert plan.migration_cost >= 0
        assert len(plan.mappings) == 2
        assert isinstance(plan.worthwhile, bool)

    def test_heavy_state_discourages_migration(self):
        tg = families.nbody(15)
        topo = networks.hypercube(3)
        segs = [{"ring", "compute1"}, {"chordal", "compute2"}]
        cheap = evaluate_migration(tg, topo, segs, state_volume=0.01)
        costly = evaluate_migration(tg, topo, segs, state_volume=100.0)
        assert costly.migration_cost >= cheap.migration_cost
        assert costly.migratory_time >= cheap.migratory_time

    def test_single_segment_no_migration(self):
        tg = families.nbody(7)
        topo = networks.hypercube(2)
        plan = evaluate_migration(
            tg, topo, [{"ring", "chordal", "compute1", "compute2"}]
        )
        assert plan.migration_cost == 0.0

    def test_requires_phase_expr(self):
        tg = families.complete(4)
        tg.phase_expr = None
        with pytest.raises(ValueError, match="phase expression"):
            evaluate_migration(tg, networks.complete(4), [{"all"}])

    def test_unknown_phase_rejected(self):
        tg = families.nbody(7)
        with pytest.raises(ValueError, match="declared"):
            evaluate_migration(tg, networks.hypercube(2), [{"nosuch"}])

    def test_custom_model(self):
        tg = families.nbody(7)
        topo = networks.hypercube(2)
        model = CostModel(hop_latency=5.0, byte_time=2.0, exec_time=0.1)
        plan = evaluate_migration(
            tg, topo, [{"ring", "compute1"}, {"chordal", "compute2"}], model=model
        )
        assert plan.static_time > 0
