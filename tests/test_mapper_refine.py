"""Tests for the KL-style refinement passes (repro.mapper.refine)."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import networks
from repro.graph import families
from repro.graph.taskgraph import TaskGraph
from repro.mapper import map_computation
from repro.mapper.contraction import mwm_contract, random_contract, total_ipc
from repro.mapper.embedding import nn_embed
from repro.mapper.embedding.nn_embed import cluster_weights
from repro.mapper.refine import refine_contraction, refine_embedding


def random_graph(n, density, seed):
    rng = random.Random(seed)
    tg = TaskGraph(f"r{n}")
    tg.add_nodes(range(n))
    ph = tg.add_comm_phase("c")
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < density:
                ph.add(u, v, float(rng.randint(1, 9)))
    return tg


def placement_cost(tg, clusters, placement, topo):
    w = cluster_weights(tg, clusters)
    return sum(
        v * topo.distance(placement[i], placement[j]) for (i, j), v in w.items()
    )


class TestRefineContraction:
    def test_never_increases_ipc(self):
        for seed in range(5):
            tg = random_graph(24, 0.2, seed)
            clusters = random_contract(tg, 4, seed=seed)
            before = total_ipc(tg, clusters)
            refined = refine_contraction(tg, clusters, load_bound=6)
            assert total_ipc(tg, refined) <= before

    def test_improves_bad_contraction(self):
        # A deliberately striped contraction of a chain must improve.
        tg = families.linear(16)
        striped = [[t for t in range(16) if t % 4 == k] for k in range(4)]
        before = total_ipc(tg, striped)
        refined = refine_contraction(tg, striped, load_bound=4)
        assert total_ipc(tg, refined) < before

    def test_respects_load_bound(self):
        tg = random_graph(20, 0.3, 1)
        clusters = random_contract(tg, 5, seed=1)
        refined = refine_contraction(tg, clusters, load_bound=4)
        assert all(len(c) <= 4 for c in refined)

    def test_partition_preserved(self):
        tg = random_graph(18, 0.25, 2)
        clusters = random_contract(tg, 3, seed=2)
        refined = refine_contraction(tg, clusters, load_bound=6)
        flat = sorted(t for c in refined for t in c)
        assert flat == list(range(18))

    def test_never_empties_cluster(self):
        tg = families.ring(8)
        clusters = [[0], [1, 2, 3, 4, 5, 6, 7]]
        refined = refine_contraction(tg, clusters, load_bound=7)
        assert len(refined) == 2

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), p=st.integers(2, 6))
    def test_monotone_property(self, seed, p):
        tg = random_graph(15, 0.3, seed)
        bound = math.ceil(15 / p)
        clusters = random_contract(tg, p, seed=seed)
        before = total_ipc(tg, clusters)
        refined = refine_contraction(tg, clusters, load_bound=bound)
        assert total_ipc(tg, refined) <= before
        assert all(len(c) <= bound for c in refined)


class TestRefineEmbedding:
    def test_never_increases_cost(self):
        for seed in range(5):
            tg = random_graph(24, 0.2, seed)
            clusters = mwm_contract(tg, 8)
            topo = networks.hypercube(3)
            placement = {i: topo.processors[i] for i in range(len(clusters))}
            before = placement_cost(tg, clusters, placement, topo)
            refined = refine_embedding(tg, clusters, placement, topo)
            assert placement_cost(tg, clusters, refined, topo) <= before

    def test_fixes_swapped_chain(self):
        # Chain clusters placed in scrambled order on a chain of procs.
        tg = families.linear(8)
        clusters = [[0, 1], [2, 3], [4, 5], [6, 7]]
        topo = networks.linear(4)
        scrambled = {0: 2, 1: 0, 2: 3, 3: 1}
        refined = refine_embedding(tg, clusters, scrambled, topo)
        assert placement_cost(tg, clusters, refined, topo) <= placement_cost(
            tg, clusters, scrambled, topo
        )
        # The optimum (cost 3... each adjacent pair at distance 1) reached.
        assert placement_cost(tg, clusters, refined, topo) == sum(
            cluster_weights(tg, clusters).values()
        )

    def test_uses_free_processors(self):
        tg = families.ring(4, volume=10.0)
        clusters = [[0, 1], [2, 3]]
        topo = networks.linear(4)
        placement = {0: 0, 1: 3}  # far apart; 1 should move next to 0
        refined = refine_embedding(tg, clusters, placement, topo)
        assert topo.distance(refined[0], refined[1]) == 1

    def test_placement_stays_injective(self):
        tg = random_graph(16, 0.3, 3)
        clusters = mwm_contract(tg, 4)
        topo = networks.mesh(2, 4)
        placement = nn_embed(tg, clusters, topo)
        refined = refine_embedding(tg, clusters, placement, topo)
        assert len(set(refined.values())) == len(clusters)


class TestDispatchRefine:
    def test_refined_mapping_valid_and_not_worse(self):
        tg = random_graph(32, 0.15, 7)
        topo = networks.hypercube(3)
        plain = map_computation(tg, topo, strategy="mwm")
        refined = map_computation(tg, topo, strategy="mwm", refine=True)
        refined.validate(require_routes=True)
        assert "refined" in refined.provenance

        def ipc(m):
            return total_ipc(tg, [sorted(ts) for ts in m.clusters().values()])

        assert ipc(refined) <= ipc(plain)

    def test_canned_not_refined(self):
        m = map_computation(families.ring(8), networks.hypercube(3), refine=True)
        assert m.provenance == "canned"

    def test_group_path_refinable(self):
        tg = families.ring(12)
        m = map_computation(tg, networks.ring(4), refine=True)
        m.validate(require_routes=True)
