"""Tests for the discrete-event simulator (repro.sim)."""

import pytest

from repro.arch import networks
from repro.graph import families
from repro.larcs import stdlib
from repro.mapper import map_computation
from repro.mapper.mapping import Mapping
from repro.mapper.routing import random_route
from repro.sim import CostModel, simulate


class TestCostModel:
    def test_transfer_time(self):
        m = CostModel(hop_latency=2.0, byte_time=0.5)
        assert m.transfer_time(4.0) == 4.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CostModel(hop_latency=-1.0)

    def test_defaults(self):
        m = CostModel()
        assert m.transfer_time(1.0) == 2.0


class TestSimulateBasics:
    def test_single_processor_no_comm_time(self):
        tg = families.ring(4)
        topo = networks.ring(1)
        m = map_computation(tg, topo)
        res = simulate(m)
        # All messages intra-processor: only compute time remains.
        assert res.messages == 0
        assert res.link_busy == {}

    def test_exec_time_accumulates(self):
        tg = families.ring(4)  # phase expr: (ring; compute)^4
        topo = networks.ring(4)
        m = map_computation(tg, topo)
        res = simulate(m, CostModel(hop_latency=0.0, byte_time=0.0, exec_time=1.0))
        # 4 repetitions x (0 comm + 1 compute per proc) = 4.
        assert res.total_time == pytest.approx(4.0)

    def test_comm_time_single_message(self):
        tg = families.ring(2)
        topo = networks.ring(2)
        m = map_computation(tg, topo)
        model = CostModel(hop_latency=1.0, byte_time=2.0, exec_time=0.0)
        res = simulate(m, model)
        # Each ring step: 2 messages on 1 link... ring2 has one link, both
        # directions share it: 2 x (1 + 2) serialized = 6 per step, 2 steps.
        assert res.step_times[0] == pytest.approx(6.0)

    def test_contention_serializes(self):
        # Star topology: all traffic through the centre's links; two
        # messages sharing one link take twice as long.
        tg = families.star(3)
        topo = networks.star(3)
        m = map_computation(tg, topo, strategy="canned")
        model = CostModel(hop_latency=1.0, byte_time=0.0, exec_time=0.0)
        res = simulate(m, model)
        # broadcast: 0->1 and 0->2 use different links: time 1.
        assert res.step_times[0] == pytest.approx(1.0)

    def test_step_count_matches_phase_expr(self):
        tg = families.nbody(7)
        topo = networks.hypercube(2)
        m = map_computation(tg, topo)
        res = simulate(m)
        assert len(res.step_times) == len(tg.phase_expr.linearize())

    def test_no_phase_expr_single_step(self):
        tg = families.complete(4)
        tg.phase_expr = None
        topo = networks.complete(4)
        m = map_computation(tg, topo)
        res = simulate(m)
        assert len(res.step_times) == 1

    def test_requires_routes(self):
        tg = families.ring(4)
        topo = networks.ring(4)
        m = Mapping(tg, topo, {i: i for i in range(4)})
        with pytest.raises(ValueError):
            simulate(m)

    def test_busy_accounting(self):
        tg = families.ring(4)
        topo = networks.ring(4)
        m = map_computation(tg, topo)
        res = simulate(m)
        assert sum(res.proc_busy.values()) > 0
        assert all(t >= 0 for t in res.link_busy.values())
        assert 0 <= res.max_link_utilization() <= 1.0 + 1e-9

    def test_phase_time_accounting(self):
        tg = families.nbody(15)
        topo = networks.hypercube(3)
        m = map_computation(tg, topo)
        res = simulate(m)
        assert set(res.phase_time) == {"ring", "chordal", "compute1", "compute2"}
        # Sequential phases: their attributed times sum to the total.
        assert sum(res.phase_time.values()) == pytest.approx(res.total_time)
        # The chordal phase is the expensive one here (multi-hop traffic).
        assert res.phase_time["chordal"] > res.phase_time["compute2"]

    def test_phase_time_parallel_phases_both_charged(self):
        tg = stdlib.load("cannon", q=2)
        topo = networks.torus(2, 2)
        m = map_computation(tg, topo)
        res = simulate(m)
        # shiftA || shiftB share their steps: both carry the same total.
        assert res.phase_time["shiftA"] == pytest.approx(res.phase_time["shiftB"])


class TestContentionEffects:
    def test_mm_route_not_slower_than_random_on_nbody(self):
        tg = families.nbody(15)
        topo = networks.hypercube(3)
        m = map_computation(tg, topo)
        model = CostModel(hop_latency=1.0, byte_time=1.0, exec_time=0.001)
        t_mm = simulate(m, model).total_time
        random_times = []
        for seed in range(5):
            base = Mapping(tg, topo, dict(m.assignment))
            base.routes = random_route(tg, topo, base.assignment, seed=seed).routes
            random_times.append(simulate(base, model).total_time)
        # MM-Route must match the best random draw (it is deterministic and
        # phase-aware) and beat the average.
        assert t_mm <= min(random_times) * 1.01
        assert t_mm <= sum(random_times) / len(random_times)

    def test_parallel_phases_share_links(self):
        # cannon: shiftA || shiftB both use torus links in one step.
        tg = stdlib.load("cannon", q=2)
        topo = networks.torus(2, 2)
        m = map_computation(tg, topo)
        res = simulate(m, CostModel(hop_latency=1.0, byte_time=0.0, exec_time=0.0))
        # First step has both shifts: messages from both phases counted.
        assert res.messages >= 8

    def test_bad_mapping_is_slower(self):
        # A mapping that scatters the ring should simulate slower than the
        # gray-code one under nonzero hop costs.
        tg = families.ring(8)
        topo = networks.hypercube(3)
        good = map_computation(tg, topo)
        scattered = {i: (i * 3) % 8 for i in range(8)}
        from repro.mapper.routing import mm_route

        bad = Mapping(tg, topo, scattered)
        bad.routes = mm_route(tg, topo, scattered).routes
        model = CostModel(hop_latency=1.0, byte_time=1.0, exec_time=0.001)
        assert simulate(good, model).total_time < simulate(bad, model).total_time
