"""Tests for the fault model: FaultSet, Topology.degrade, serialisation."""

import pytest

from repro.arch import DisconnectedTopologyError, networks
from repro.arch.topology import Topology
from repro.io import faultset_from_dict, faultset_to_dict, load_faultset, save_faultset
from repro.resilience import FaultSet


class TestFaultSet:
    def test_empty(self):
        fs = FaultSet()
        assert fs.is_empty
        assert fs.describe() == "no faults"

    def test_link_normalisation(self):
        assert FaultSet(failed_links=[(0, 1)]) == FaultSet(failed_links=[(1, 0)])

    def test_degraded_order_independent(self):
        a = FaultSet(degraded_links=[((0, 1), 2.0), ((2, 3), 3.0)])
        b = FaultSet(degraded_links=[((3, 2), 3.0), ((1, 0), 2.0)])
        assert a == b
        assert hash(a) == hash(b)

    def test_degraded_dict_form(self):
        fs = FaultSet(degraded_links={(0, 1): 2.5})
        assert fs.slowdown_of(1, 0) == 2.5
        assert fs.slowdown_of(0, 2) == 1.0

    def test_factor_below_one_rejected(self):
        with pytest.raises(ValueError, match=">= 1.0"):
            FaultSet(degraded_links=[((0, 1), 0.5)])

    def test_conflicting_factors_rejected(self):
        with pytest.raises(ValueError, match="conflicting"):
            FaultSet(degraded_links=[((0, 1), 2.0), ((1, 0), 3.0)])

    def test_failed_and_degraded_overlap_rejected(self):
        with pytest.raises(ValueError, match="both failed and degraded"):
            FaultSet(failed_links=[(0, 1)], degraded_links=[((1, 0), 2.0)])

    def test_self_link_rejected(self):
        with pytest.raises(ValueError, match="two distinct"):
            FaultSet(failed_links=[(3, 3)])

    def test_single_fault_constructors(self):
        assert FaultSet.proc(5).failed_procs == frozenset([5])
        assert FaultSet.link(1, 2).failed_links == frozenset([frozenset((1, 2))])

    def test_dead_links_include_incident(self):
        topo = networks.ring(4)
        dead = FaultSet.proc(0).dead_links_on(topo)
        assert dead == {frozenset((0, 1)), frozenset((0, 3))}

    def test_union(self):
        fs = FaultSet.proc(1).union(FaultSet.link(2, 3))
        assert fs.failed_procs == frozenset([1])
        assert frozenset((2, 3)) in fs.failed_links

    def test_validate_against_unknown_proc(self):
        with pytest.raises(ValueError, match="processors not in topology"):
            FaultSet.proc(99).validate_against(networks.ring(4))

    def test_validate_against_unknown_link(self):
        # 0-2 is a chord the 4-ring does not have.
        with pytest.raises(ValueError, match="links not in topology"):
            FaultSet.link(0, 2).validate_against(networks.ring(4))


class TestDegrade:
    def test_failed_proc_removed_with_links(self):
        topo = networks.hypercube(3)
        sub = topo.degrade(FaultSet.proc(0))
        assert 0 not in sub.processors
        assert sub.n_processors == 7
        assert sub.n_links == topo.n_links - 3  # degree of a cube corner

    def test_survivors_keep_insertion_order(self):
        topo = networks.hypercube(3)
        sub = topo.degrade(FaultSet.proc(3))
        assert sub.processors == [p for p in topo.processors if p != 3]

    def test_fresh_vector_core(self):
        topo = networks.hypercube(3)
        sub = topo.degrade(FaultSet.proc(0))
        # Index bijection is rebuilt for the survivor set...
        assert sub.index_of(sub.processors[0]) == 0
        assert sub.distance_matrix().shape == (7, 7)
        # ...and link ids are renumbered 1..n over the surviving links.
        assert sorted(sub.link_id(*tuple(l)) for l in sub.links) == list(
            range(1, sub.n_links + 1)
        )

    def test_failed_link_removed(self):
        topo = networks.hypercube(3)
        sub = topo.degrade(FaultSet.link(0, 1))
        assert not sub.has_link(0, 1)
        assert sub.n_processors == 8
        # Around the missing cube edge: flip another bit out and back.
        assert sub.distance(0, 1) == 3

    def test_degraded_links_carried_with_new_ids(self):
        topo = networks.hypercube(3)
        sub = topo.degrade(FaultSet(degraded_links=[((1, 3), 2.5)]))
        lid = sub.link_id(1, 3)
        assert sub.link_slowdowns == {lid: 2.5}

    def test_disconnection_raises(self):
        topo = networks.linear(4)  # 0-1-2-3
        with pytest.raises(DisconnectedTopologyError, match="not connected"):
            topo.degrade(FaultSet.link(1, 2))

    def test_disconnection_allowed_when_asked(self):
        topo = networks.linear(4)
        sub = topo.degrade(FaultSet.link(1, 2), allow_disconnected=True)
        assert not sub.is_connected
        assert [sorted(c) for c in sub.components()] == [[0, 1], [2, 3]]

    def test_unknown_fault_rejected(self):
        with pytest.raises(ValueError, match="not in topology"):
            networks.ring(4).degrade(FaultSet.proc(99))

    def test_all_procs_failed_rejected(self):
        topo = networks.ring(3)
        with pytest.raises(ValueError):
            topo.degrade(FaultSet(failed_procs=[0, 1, 2]))


class TestTopologyConnectivity:
    def test_distance_matrix_raises_on_disconnected(self):
        topo = Topology(
            "split", [(0, 1), (2, 3)], nodes=[0, 1, 2, 3], allow_disconnected=True
        )
        with pytest.raises(DisconnectedTopologyError, match="components"):
            topo.distance_matrix()

    def test_distance_raises_on_unreachable_pair(self):
        topo = Topology(
            "split", [(0, 1), (2, 3)], nodes=[0, 1, 2, 3], allow_disconnected=True
        )
        with pytest.raises(DisconnectedTopologyError):
            topo.distance(0, 3)

    def test_connected_topology_unaffected(self):
        topo = networks.hypercube(3)
        assert topo.is_connected
        assert topo.distance_matrix().max() == 3


class TestFaultSetIO:
    def test_round_trip(self, tmp_path):
        fs = FaultSet(
            failed_procs=[3, 7],
            failed_links=[(0, 1)],
            degraded_links=[((2, 6), 2.0)],
        )
        path = tmp_path / "faults.json"
        save_faultset(fs, str(path))
        assert load_faultset(str(path)) == fs

    def test_dict_round_trip_tuple_labels(self):
        fs = FaultSet(failed_procs=[(0, 1)], failed_links=[((0, 0), (0, 1))])
        assert faultset_from_dict(faultset_to_dict(fs)) == fs

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="unknown faultset format"):
            faultset_from_dict({"format": "nope"})


class TestRecovery:
    """FaultSet.difference: the recovery path (PR 10)."""

    def test_difference_inverts_union(self):
        a = FaultSet(failed_procs=[1], degraded_links=[((2, 3), 2.0)])
        b = FaultSet(failed_procs=[4], failed_links=[(5, 6)])
        merged = a.union(b)
        assert merged.difference(b) == a
        assert merged.difference(a) == b
        assert merged.difference(merged) == FaultSet()

    def test_recover_unfailed_proc_rejected(self):
        active = FaultSet(failed_procs=[1])
        with pytest.raises(ValueError, match="not failed"):
            active.difference(FaultSet(failed_procs=[2]))

    def test_recover_unfailed_link_rejected(self):
        active = FaultSet(failed_links=[(0, 1)])
        with pytest.raises(ValueError, match="not failed"):
            active.difference(FaultSet(failed_links=[(2, 3)]))

    def test_recover_undegraded_link_rejected(self):
        active = FaultSet(degraded_links=[((0, 1), 2.0)])
        with pytest.raises(ValueError, match="not degraded"):
            active.difference(FaultSet(degraded_links=[((2, 3), 2.0)]))

    def test_recovery_factor_must_match(self):
        active = FaultSet(degraded_links=[((0, 1), 2.0)])
        with pytest.raises(ValueError, match="factor"):
            active.difference(FaultSet(degraded_links=[((0, 1), 3.0)]))

    def test_partial_degradation_recovery(self):
        active = FaultSet(
            degraded_links=[((0, 1), 2.0), ((1, 2), 4.0)]
        )
        left = active.difference(FaultSet(degraded_links=[((1, 2), 4.0)]))
        assert left == FaultSet(degraded_links=[((0, 1), 2.0)])


class TestDegradeRecoverRoundTrip:
    """base.degrade(faults) re-derivation makes recovery exact."""

    def test_full_round_trip_restores_pristine_machine(self):
        base = networks.mesh(3, 3)
        faults = FaultSet(
            failed_procs=[0],
            failed_links=[(4, 5)],
            degraded_links=[((7, 8), 2.5)],
        )
        degraded = base.degrade(faults, name=base.name)
        assert 0 not in degraded.processors
        active = FaultSet().union(faults).difference(faults)
        restored = base.degrade(active, name=base.name)
        # The family tag is (rightly) dropped by any degrade, so compare
        # against the session's own pristine derivation: an empty degrade.
        pristine = base.degrade(FaultSet(), name=base.name)
        assert restored.fingerprint() == pristine.fingerprint()
        assert restored.structural_key() == base.structural_key()
        assert restored.processors == base.processors
        assert list(restored.links) == list(base.links)
        assert not restored.link_slowdowns

    def test_partial_recovery_matches_direct_degrade(self):
        base = networks.hypercube(3)
        a = FaultSet(failed_procs=[0])
        b = FaultSet(degraded_links=[((3, 7), 2.0)])
        # degrade(a+b) then recover b must equal degrade(a) exactly.
        roundabout = base.degrade(a.union(b).difference(b), name="after")
        direct = base.degrade(a, name="after")
        assert roundabout.fingerprint() == direct.fingerprint()
        assert roundabout.processors == direct.processors
        assert roundabout.link_slowdowns == direct.link_slowdowns

    def test_distance_cache_shared_across_round_trip(self):
        # Structure (not slowdowns) keys the all-pairs distance cache: a
        # degrade -> recover round-trip lands back on the same structural
        # key, so the matrices are literally shared.
        base = networks.mesh(4, 4)
        flap = FaultSet(degraded_links=[((0, 1), 3.0)])
        degraded = base.degrade(flap)
        recovered = base.degrade(FaultSet().union(flap).difference(flap))
        assert degraded.structural_key() == base.structural_key()
        mat_base = base.distance_matrix()
        assert recovered.distance_matrix() is mat_base

    def test_capacity_rows_restored_on_recovery(self):
        from repro.arch.capacity import Capacities
        from repro.arch.hierarchy import with_capacities

        base = with_capacities(
            networks.ring(4),
            Capacities.from_spec(
                {"mem": {"demand": "weight", "cap": 8.0}},
                networks.ring(4).processors,
            ),
        )
        fault = FaultSet(failed_procs=[2])
        degraded = base.degrade(fault)
        assert 2 not in degraded.capacities.procs
        recovered = base.degrade(FaultSet().union(fault).difference(fault))
        assert recovered.capacities.procs == base.capacities.procs
        assert (
            recovered.capacities.cap_array(recovered)
            == base.capacities.cap_array(base)
        ).all()
