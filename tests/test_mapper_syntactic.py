"""Tests for the syntactic Cayley characterisation (contraction/syntactic.py)."""

import pytest

from repro.graph.properties import comm_functions
from repro.larcs import parse_larcs, stdlib
from repro.larcs.compiler import compile_larcs
from repro.mapper.contraction.syntactic import SyntacticCayley, syntactic_cayley
from repro.mapper.mapping import NotApplicableError


class TestCirculantRecognition:
    def test_nbody_recognised(self):
        result = syntactic_cayley(parse_larcs(stdlib.NBODY), {"n": 15})
        assert result.kind == "circulant"
        assert result.n == 15
        assert result.constants == {"ring": 1, "chordal": 8}

    def test_voting_indexed_phases_recognised(self):
        result = syntactic_cayley(parse_larcs(stdlib.BROADCAST_VOTING), {"m": 3})
        assert result.kind == "circulant"
        assert result.constants == {"hop[0]": 1, "hop[1]": 2, "hop[2]": 4}

    def test_generators_match_generic_path(self):
        program = parse_larcs(stdlib.NBODY)
        result = syntactic_cayley(program, {"n": 15})
        tg = compile_larcs(stdlib.NBODY, n=15).task_graph
        assert result.generators() == comm_functions(tg)

    def test_group_is_regular_without_enumeration(self):
        result = syntactic_cayley(parse_larcs(stdlib.NBODY), {"n": 15})
        group = result.group()
        assert group.order == 15 and group.is_regular_action()

    def test_non_coprime_shifts_rejected(self):
        src = """
        algorithm striped(n);
        nodetype t[0 .. n-1];
        comphase a t(i) -> t((i + 2) mod n);
        comphase b t(i) -> t((i + 4) mod n);
        """
        with pytest.raises(NotApplicableError, match="gcd"):
            syntactic_cayley(parse_larcs(src), {"n": 8})

    def test_shift_written_constant_first(self):
        src = """
        algorithm c(n);
        constant half = (n + 1) / 2;
        nodetype t[0 .. n-1];
        comphase a t(i) -> t((half + i) mod n);
        """
        result = syntactic_cayley(parse_larcs(src), {"n": 9})
        assert result.constants == {"a": 5}

    def test_negative_shift(self):
        src = """
        algorithm back(n);
        nodetype t[0 .. n-1];
        comphase a t(i) -> t((i - 1) mod n);
        comphase b t(i) -> t((i + 1) mod n);
        """
        result = syntactic_cayley(parse_larcs(src), {"n": 6})
        assert result.constants["a"] == 5

    def test_reflection_rejected(self):
        src = """
        algorithm refl(n);
        nodetype t[0 .. n-1];
        comphase a t(i) -> t((n - 1 - i) mod n);
        """
        with pytest.raises(NotApplicableError):
            syntactic_cayley(parse_larcs(src), {"n": 8})


class TestXorRecognition:
    def test_fft_recognised(self):
        result = syntactic_cayley(parse_larcs(stdlib.FFT), {"m": 3})
        assert result.kind == "xor"
        assert result.constants == {"fly[0]": 1, "fly[1]": 2, "fly[2]": 4}

    def test_xor_generators_match_generic(self):
        result = syntactic_cayley(parse_larcs(stdlib.FFT), {"m": 4})
        tg = compile_larcs(stdlib.FFT, m=4).task_graph
        assert result.generators() == comm_functions(tg)

    def test_partial_span_rejected(self):
        src = """
        algorithm sub(m);
        constant n = 2 ** m;
        nodetype t[0 .. n-1];
        comphase a t(i) -> t(i xor 1);
        comphase b t(i) -> t(i xor 2);
        """
        with pytest.raises(NotApplicableError, match="span"):
            syntactic_cayley(parse_larcs(src), {"m": 3})  # 1,2 span only 4 of 8

    def test_full_span_accepted(self):
        src = """
        algorithm full(m);
        constant n = 2 ** m;
        nodetype t[0 .. n-1];
        comphase a t(i) -> t(i xor 1);
        comphase b t(i) -> t(i xor 6);
        comphase c t(i) -> t(i xor 4);
        """
        result = syntactic_cayley(parse_larcs(src), {"m": 3})
        assert result.kind == "xor"


class TestRejections:
    def test_guarded_rules_rejected(self):
        with pytest.raises(NotApplicableError, match="guards"):
            syntactic_cayley(parse_larcs(stdlib.PIPELINE), {"n": 8})

    def test_multidim_rejected(self):
        with pytest.raises(NotApplicableError, match="1-D"):
            syntactic_cayley(parse_larcs(stdlib.JACOBI), {"rows": 3, "cols": 3})

    def test_mixed_patterns_rejected(self):
        src = """
        algorithm mixed(n);
        nodetype t[0 .. n-1];
        comphase a t(i) -> t((i + 1) mod n);
        comphase b t(i) -> t(i xor 1);
        """
        with pytest.raises(NotApplicableError, match="mixed"):
            syntactic_cayley(parse_larcs(src), {"n": 8})

    def test_non_matching_function_rejected(self):
        src = """
        algorithm sq(n);
        nodetype t[0 .. n-1];
        comphase a t(i) -> t((i * i) mod n);
        """
        with pytest.raises(NotApplicableError, match="neither"):
            syntactic_cayley(parse_larcs(src), {"n": 8})

    def test_identity_only_not_transitive(self):
        # A single self-message phase generates the trivial group: the
        # action cannot be regular on more than one task.
        src = """
        algorithm quiet(n);
        nodetype t[0 .. n-1];
        comphase a t(i) -> t(i);
        """
        with pytest.raises(NotApplicableError, match="transitive"):
            syntactic_cayley(parse_larcs(src), {"n": 4})
