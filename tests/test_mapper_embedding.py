"""Tests for NN-Embed and the baseline embeddings."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import networks
from repro.graph import families
from repro.larcs import stdlib
from repro.mapper.embedding import (
    assignment_from_clusters,
    identity_embed,
    nn_embed,
    random_embed,
)
from repro.mapper.embedding.nn_embed import cluster_weights
from repro.mapper.mapping import NotApplicableError


class TestClusterWeights:
    def test_aggregates_over_phases(self):
        tg = families.nbody(7)
        clusters = [[0, 1], [2, 3], [4, 5], [6]]
        w = cluster_weights(tg, clusters)
        # Ring edge 1->2 crosses clusters 0 and 1.
        assert w[(0, 1)] >= 1.0

    def test_internal_edges_excluded(self):
        tg = families.ring(4)
        w = cluster_weights(tg, [[0, 1, 2, 3]])
        assert w == {}


class TestNnEmbed:
    def test_injective_placement(self):
        tg = families.nbody(15)
        clusters = [[i, i + 1] for i in range(0, 14, 2)] + [[14]]
        placement = nn_embed(tg, clusters, networks.hypercube(3))
        assert len(set(placement.values())) == len(clusters)

    def test_too_many_clusters_rejected(self):
        tg = families.ring(8)
        clusters = [[i] for i in range(8)]
        with pytest.raises(NotApplicableError):
            nn_embed(tg, clusters, networks.ring(4))

    def test_empty(self):
        assert nn_embed(families.ring(2), [], networks.ring(2)) == {}

    def test_heavy_pairs_adjacent_on_ring(self):
        # Two clusters communicating heavily must land on adjacent
        # processors when the rest are quiet.
        tg = families.ring(8, volume=0.001)
        tg.add_comm_phase("hot").add(0, 2, 100.0)
        clusters = [[0, 1], [2, 3], [4, 5], [6, 7]]
        placement = nn_embed(tg, clusters, networks.ring(4))
        topo = networks.ring(4)
        assert topo.distance(placement[0], placement[1]) == 1

    def test_chain_locality_quality(self):
        # Greedy NN-Embed gives no optimality guarantee, but on a chain of
        # clusters mapped to a chain of processors the distance-weighted
        # communication must stay within a small factor of the lower bound
        # (every cluster edge needs at least one hop).
        tg = families.linear(8)
        clusters = [[0, 1], [2, 3], [4, 5], [6, 7]]
        topo = networks.linear(4)
        placement = nn_embed(tg, clusters, topo)
        w = cluster_weights(tg, clusters)
        cost = sum(
            wv * topo.distance(placement[i], placement[j])
            for (i, j), wv in w.items()
        )
        lower = sum(w.values())
        assert cost <= 2.5 * lower

    def test_deterministic(self):
        tg = stdlib.load("jacobi", rows=4, cols=4)
        from repro.mapper.contraction import mwm_contract

        clusters = mwm_contract(tg, 4)
        p1 = nn_embed(tg, clusters, networks.mesh(2, 2))
        p2 = nn_embed(tg, clusters, networks.mesh(2, 2))
        assert p1 == p2

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=8))
    def test_placement_always_valid(self, n_clusters):
        tg = families.ring(16)
        clusters = [
            [t for t in range(16) if t % n_clusters == c] for c in range(n_clusters)
        ]
        topo = networks.hypercube(3)
        placement = nn_embed(tg, clusters, topo)
        assert set(placement) == set(range(n_clusters))
        assert len(set(placement.values())) == n_clusters
        assert set(placement.values()) <= set(topo.processors)


class TestBaselinesAndFlatten:
    def test_identity(self):
        placement = identity_embed([[0], [1], [2]], networks.ring(4))
        assert placement == {0: 0, 1: 1, 2: 2}

    def test_random_distinct(self):
        placement = random_embed([[0], [1], [2]], networks.ring(8), seed=3)
        assert len(set(placement.values())) == 3

    def test_random_seeded(self):
        a = random_embed([[0], [1]], networks.ring(8), seed=1)
        b = random_embed([[0], [1]], networks.ring(8), seed=1)
        assert a == b

    def test_oversubscription_rejected(self):
        with pytest.raises(NotApplicableError):
            identity_embed([[0], [1], [2]], networks.ring(2))

    def test_assignment_from_clusters(self):
        assignment = assignment_from_clusters([[0, 1], [2]], {0: "p0", 1: "p1"})
        assert assignment == {0: "p0", 1: "p0", 2: "p1"}
