"""Tests for repro.graph.taskgraph."""

import pytest

from repro.graph import TaskGraph, parse_phase_expr
from repro.graph.taskgraph import CommEdge


def make_simple():
    tg = TaskGraph("demo")
    tg.add_nodes(range(4))
    ph = tg.add_comm_phase("ring")
    for i in range(4):
        ph.add(i, (i + 1) % 4, 2.0)
    tg.add_exec_phase("work", cost=3.0, costs={0: 5.0})
    return tg


class TestConstruction:
    def test_counts(self):
        tg = make_simple()
        assert tg.n_tasks == 4
        assert tg.n_edges == 4
        assert tg.total_volume() == 8.0

    def test_add_edge_checks_nodes(self):
        tg = make_simple()
        with pytest.raises(KeyError):
            tg.add_edge("ring", 0, 99)

    def test_duplicate_phase_name_rejected(self):
        tg = make_simple()
        with pytest.raises(ValueError):
            tg.add_comm_phase("ring")
        with pytest.raises(ValueError):
            tg.add_exec_phase("ring")

    def test_node_weight(self):
        tg = TaskGraph()
        tg.add_node("a", 2.5)
        assert tg.node_weight("a") == 2.5

    def test_exec_cost_override(self):
        tg = make_simple()
        work = tg.exec_phase("work")
        assert work.cost_of(0) == 5.0
        assert work.cost_of(1) == 3.0

    def test_phase_names_order(self):
        tg = make_simple()
        assert tg.phase_names == ["ring", "work"]

    def test_repr(self):
        assert "4 tasks" in repr(make_simple())


class TestDerivedGraphs:
    def test_static_graph_aggregates_antiparallel(self):
        tg = TaskGraph()
        tg.add_nodes(range(2))
        a = tg.add_comm_phase("a")
        b = tg.add_comm_phase("b")
        a.add(0, 1, 3.0)
        b.add(1, 0, 4.0)
        g = tg.static_graph()
        assert g[0][1]["weight"] == 7.0

    def test_static_graph_drops_self_loops(self):
        tg = TaskGraph()
        tg.add_node(0)
        tg.add_comm_phase("a").add(0, 0, 1.0)
        assert tg.static_graph().number_of_edges() == 0

    def test_phase_digraph(self):
        tg = make_simple()
        d = tg.phase_digraph("ring")
        assert d.number_of_edges() == 4
        assert d[0][1]["volume"] == 2.0

    def test_static_graph_node_weights(self):
        tg = TaskGraph()
        tg.add_node(0, 9.0)
        assert tg.static_graph().nodes[0]["weight"] == 9.0


class TestCommFunction:
    def test_functional_phase(self):
        tg = make_simple()
        fn = tg.comm_function("ring")
        assert fn == {0: 1, 1: 2, 2: 3, 3: 0}

    def test_non_functional_phase(self):
        tg = TaskGraph()
        tg.add_nodes(range(3))
        ph = tg.add_comm_phase("bcast")
        ph.add(0, 1)
        ph.add(0, 2)
        assert tg.comm_function("bcast") is None

    def test_integer_nodes_contiguous(self):
        assert make_simple().integer_nodes() == [0, 1, 2, 3]

    def test_integer_nodes_noncontiguous(self):
        tg = TaskGraph()
        tg.add_nodes([0, 2])
        assert tg.integer_nodes() is None

    def test_integer_nodes_tuples(self):
        tg = TaskGraph()
        tg.add_nodes([(0, 0), (0, 1)])
        assert tg.integer_nodes() is None


class TestValidation:
    def test_valid_graph_passes(self):
        make_simple().validate()

    def test_negative_volume_rejected(self):
        tg = TaskGraph()
        tg.add_nodes(range(2))
        tg.add_comm_phase("p").edges.append(CommEdge(0, 1, -1.0))
        with pytest.raises(ValueError):
            tg.validate()

    def test_undeclared_phase_in_expression(self):
        tg = make_simple()
        tg.phase_expr = parse_phase_expr("ring; nosuch")
        with pytest.raises(ValueError):
            tg.validate()

    def test_phase_expr_with_declared_phases(self):
        tg = make_simple()
        tg.phase_expr = parse_phase_expr("(ring; work)^3")
        tg.validate()


class TestCommEdge:
    def test_reversed(self):
        e = CommEdge(1, 2, 5.0)
        assert e.reversed() == CommEdge(2, 1, 5.0)


class TestDerivedStructureCaching:
    def test_static_graph_is_cached(self):
        tg = make_simple()
        assert tg.static_graph() is tg.static_graph()

    def test_add_edge_invalidates_static_graph(self):
        tg = make_simple()
        g1 = tg.static_graph()
        assert not g1.has_edge(0, 2)
        tg.add_edge("ring", 0, 2, 7.0)
        g2 = tg.static_graph()
        assert g2 is not g1
        assert g2[0][2]["weight"] == 7.0

    def test_add_node_invalidates_static_graph(self):
        tg = make_simple()
        assert 99 not in tg.static_graph()
        tg.add_node(99, weight=2.0)
        assert tg.static_graph().nodes[99]["weight"] == 2.0

    def test_direct_phase_append_invalidates_static_graph(self):
        # The family generators append to CommPhase objects directly,
        # bypassing TaskGraph.add_edge; the edge-count part of the cache
        # key must still catch that.
        tg = make_simple()
        g1 = tg.static_graph()
        tg.comm_phase("ring").add(1, 3, 4.0)
        g2 = tg.static_graph()
        assert g2 is not g1
        assert g2[1][3]["weight"] == 4.0

    def test_new_phase_invalidates_name_sets(self):
        tg = make_simple()
        assert tg.comm_phase_names == frozenset({"ring"})
        assert tg.exec_phase_names == frozenset({"work"})
        tg.add_comm_phase("extra")
        tg.add_exec_phase("more")
        assert tg.comm_phase_names == frozenset({"ring", "extra"})
        assert tg.exec_phase_names == frozenset({"work", "more"})

    def test_phase_views_are_live_and_read_only(self):
        tg = make_simple()
        view = tg.comm_phases
        tg.add_comm_phase("late")
        assert "late" in view  # live view, not a stale copy
        with pytest.raises(TypeError):
            view["bad"] = None

    def test_exec_phase_view_read_only(self):
        tg = make_simple()
        with pytest.raises(TypeError):
            tg.exec_phases["bad"] = None
