"""Tests for repro.groups.permutation."""

import pytest
from hypothesis import given, strategies as st

from repro.groups.permutation import Permutation


def permutations(max_degree=9):
    return st.integers(min_value=1, max_value=max_degree).flatmap(
        lambda n: st.permutations(list(range(n))).map(Permutation)
    )


def permutation_pairs(max_degree=8):
    """Two permutations of the same degree."""
    return st.integers(min_value=1, max_value=max_degree).flatmap(
        lambda n: st.tuples(
            st.permutations(list(range(n))).map(Permutation),
            st.permutations(list(range(n))).map(Permutation),
        )
    )


def permutation_triples(max_degree=7):
    return st.integers(min_value=1, max_value=max_degree).flatmap(
        lambda n: st.tuples(
            *[st.permutations(list(range(n))).map(Permutation)] * 3
        )
    )


class TestConstruction:
    def test_identity(self):
        e = Permutation.identity(4)
        assert e.is_identity()
        assert all(e(i) == i for i in range(4))

    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            Permutation([0, 0, 1])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Permutation([0, 3])

    def test_from_function_ring(self):
        p = Permutation.from_function(lambda i: (i + 1) % 8, 8)
        assert p.cycles() == [tuple(range(8))]

    def test_from_function_non_bijection_rejected(self):
        with pytest.raises(ValueError):
            Permutation.from_function(lambda i: min(i, 5), 8)

    def test_from_cycles(self):
        p = Permutation.from_cycles([(0, 4), (1, 5), (2, 6), (3, 7)], 8)
        assert p(0) == 4 and p(4) == 0 and p(3) == 7

    def test_from_cycles_fixed_points(self):
        p = Permutation.from_cycles([(1, 2)], 4)
        assert p(0) == 0 and p(3) == 3

    def test_from_cycles_duplicate_point_rejected(self):
        with pytest.raises(ValueError):
            Permutation.from_cycles([(0, 1), (1, 2)], 4)


class TestParse:
    def test_paper_compact_form(self):
        # comm2 of the paper's 8-node perfect broadcast example.
        p = Permutation.parse("(0246)(1357)", 8)
        assert p(0) == 2 and p(2) == 4 and p(4) == 6 and p(6) == 0
        assert p(1) == 3 and p(7) == 1

    def test_spaced_form(self):
        p = Permutation.parse("(0 10 5)", 12)
        assert p(0) == 10 and p(10) == 5 and p(5) == 0

    def test_identity_forms(self):
        assert Permutation.parse("()", 5).is_identity()
        assert Permutation.parse("e", 5).is_identity()

    def test_roundtrip_str(self):
        p = Permutation.parse("(04)(15)(26)(37)", 8)
        assert Permutation.parse(str(p), 8) == p

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            Permutation.parse("hello", 4)


class TestComposition:
    def test_paper_footnote_example(self):
        # Footnote 4: (123) composed with (13)(2) gives (12)(3),
        # left-to-right.
        a = Permutation.parse("(123)", 4)
        b = Permutation.parse("(13)(2)", 4)
        assert str(a * b) == "(0)(12)(3)"

    def test_left_to_right_semantics(self):
        a = Permutation.from_function(lambda i: (i + 1) % 5, 5)
        b = Permutation.from_function(lambda i: (2 * i) % 5, 5)
        ab = a * b
        for x in range(5):
            assert ab(x) == b(a(x))

    def test_degree_mismatch(self):
        with pytest.raises(ValueError):
            Permutation.identity(3) * Permutation.identity(4)

    @given(permutation_pairs())
    def test_inverse_cancels(self, pair):
        p, _ = pair
        assert (p * p.inverse()).is_identity()
        assert (p.inverse() * p).is_identity()

    @given(permutation_triples())
    def test_associativity(self, triple):
        a, b, c = triple
        assert (a * b) * c == a * (b * c)

    @given(permutations())
    def test_identity_neutral(self, p):
        e = Permutation.identity(p.degree)
        assert p * e == p and e * p == p

    @given(permutations())
    def test_power_matches_repeated_product(self, p):
        q = Permutation.identity(p.degree)
        for k in range(5):
            assert p**k == q
            q = q * p

    @given(permutations())
    def test_negative_power(self, p):
        assert p**-1 == p.inverse()
        assert (p**-2) * (p**2) == Permutation.identity(p.degree)


class TestCycleStructure:
    def test_order_lcm(self):
        p = Permutation.from_cycles([(0, 1, 2), (3, 4)], 5)
        assert p.order() == 6

    @given(permutations())
    def test_order_is_minimal_period(self, p):
        k = p.order()
        assert (p**k).is_identity()
        for j in range(1, k):
            assert not (p**j).is_identity()

    def test_uniform_cycles_true(self):
        assert Permutation.parse("(04)(15)(26)(37)", 8).has_uniform_cycles()
        assert Permutation.parse("(01234567)", 8).has_uniform_cycles()
        assert Permutation.identity(8).has_uniform_cycles()

    def test_uniform_cycles_false(self):
        assert not Permutation.from_cycles([(0, 1, 2), (3, 4)], 5).has_uniform_cycles()
        # A fixed point counts as a cycle of length 1.
        assert not Permutation.from_cycles([(1, 2)], 3).has_uniform_cycles()

    @given(permutations())
    def test_cycles_partition_points(self, p):
        pts = sorted(x for c in p.cycles() for x in c)
        assert pts == list(range(p.degree))

    def test_cycles_sorted_by_minimum(self):
        p = Permutation.parse("(04)(15)(26)(37)", 8)
        assert [c[0] for c in p.cycles()] == [0, 1, 2, 3]


class TestDunder:
    def test_hash_eq(self):
        a = Permutation([1, 0, 2])
        b = Permutation.from_cycles([(0, 1)], 3)
        assert a == b and hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_repr_roundtrip(self):
        p = Permutation([2, 0, 1])
        assert eval(repr(p)) == p

    def test_str_large_degree_uses_spaces(self):
        p = Permutation.from_cycles([(0, 11)], 12)
        assert "0 11" in str(p)
