"""Tests for the Mapping result type (repro.mapper.mapping)."""

import pytest

from repro.arch import networks
from repro.graph import families
from repro.mapper.mapping import Mapping


def make_mapping():
    tg = families.ring(4)
    topo = networks.ring(4)
    assignment = {i: i for i in range(4)}
    routes = {("ring", i): [i, (i + 1) % 4] for i in range(4)}
    return Mapping(tg, topo, assignment, routes, provenance="test")


class TestLookups:
    def test_proc_of(self):
        m = make_mapping()
        assert m.proc_of(2) == 2

    def test_tasks_on_and_clusters(self):
        tg = families.ring(4)
        topo = networks.ring(2)
        m = Mapping(tg, topo, {0: 0, 1: 0, 2: 1, 3: 1})
        assert sorted(m.tasks_on(0)) == [0, 1]
        assert m.clusters() == {0: [0, 1], 1: [2, 3]}

    def test_dilation(self):
        m = make_mapping()
        assert m.dilation("ring", 0) == 1

    def test_used_procs(self):
        tg = families.ring(2)
        topo = networks.ring(4)
        m = Mapping(tg, topo, {0: 1, 1: 1})
        assert m.used_procs() == {1}

    def test_repr(self):
        assert "test" in repr(make_mapping())


class TestValidate:
    def test_valid_passes(self):
        make_mapping().validate(require_routes=True)

    def test_unassigned_task(self):
        tg = families.ring(3)
        topo = networks.ring(3)
        m = Mapping(tg, topo, {0: 0, 1: 1})
        with pytest.raises(ValueError, match="unassigned"):
            m.validate()

    def test_unknown_processor(self):
        tg = families.ring(2)
        topo = networks.ring(2)
        m = Mapping(tg, topo, {0: 0, 1: 99})
        with pytest.raises(ValueError, match="unknown processor"):
            m.validate()

    def test_route_not_a_path(self):
        m = make_mapping()
        m.routes[("ring", 0)] = [0, 2]  # 0 and 2 are not linked in ring4
        with pytest.raises(ValueError, match="not a network path"):
            m.validate()

    def test_route_wrong_endpoints(self):
        m = make_mapping()
        m.routes[("ring", 0)] = [1, 2]
        with pytest.raises(ValueError, match="does not connect"):
            m.validate()

    def test_route_bad_key(self):
        m = make_mapping()
        m.routes[("ring", 99)] = [0, 1]
        with pytest.raises(ValueError, match="matches no edge"):
            m.validate()

    def test_require_routes(self):
        m = make_mapping()
        del m.routes[("ring", 2)]
        m.validate()  # fine without the flag
        with pytest.raises(ValueError, match="missing route"):
            m.validate(require_routes=True)
