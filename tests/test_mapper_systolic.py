"""Tests for the systolic synthesis subsystem (repro.mapper.systolic)."""

import numpy as np
import pytest

from repro.larcs.parser import parse_larcs
from repro.mapper.mapping import NotApplicableError
from repro.mapper.systolic import (
    NoScheduleError,
    Polytope,
    UniformRecurrence,
    convolution,
    detect_recurrence,
    find_allocation,
    find_schedule,
    matmul,
    synthesize,
)
from repro.mapper.systolic.allocation import allocation_matrix, project
from repro.mapper.systolic.recurrence import triangular_solver
from repro.mapper.systolic.schedule import makespan


class TestPolytope:
    def test_box_points(self):
        p = Polytope([(0, 1), (0, 2)])
        assert len(p) == 6
        assert p.contains((1, 2)) and not p.contains((2, 0))

    def test_constraints_cut(self):
        # Triangle j <= i on a 3x3 box.
        p = Polytope([(0, 2), (0, 2)], [((-1, 1), 0)])
        assert len(p) == 6
        assert p.contains((2, 2)) and not p.contains((0, 1))

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            Polytope([(3, 2)])

    def test_dim_mismatch_constraint(self):
        with pytest.raises(ValueError):
            Polytope([(0, 1)], [((1, 1), 0)])

    def test_wrong_dim_point(self):
        assert not Polytope([(0, 1)]).contains((0, 0))

    def test_box_corners(self):
        assert len(Polytope([(0, 3), (0, 3)]).box_corners()) == 4


class TestRecurrence:
    def test_matmul_edges_within_domain(self):
        rec = matmul(3)
        for p, q in rec.edges():
            assert rec.domain.contains(p) and rec.domain.contains(q)
            assert tuple(b - a for a, b in zip(p, q)) in rec.dependencies

    def test_zero_dependence_rejected(self):
        with pytest.raises(ValueError):
            UniformRecurrence("bad", Polytope([(0, 1)]), [(0,)])

    def test_dim_mismatch_rejected(self):
        with pytest.raises(ValueError):
            UniformRecurrence("bad", Polytope([(0, 1)]), [(1, 0)])

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            matmul(0)
        with pytest.raises(ValueError):
            convolution(0, 3)


class TestSchedule:
    def test_matmul_optimal(self):
        lam, span = find_schedule(matmul(4))
        assert lam == (1, 1, 1)
        assert span == 3 * 3 + 1  # 3(n-1)+1 time steps

    def test_convolution(self):
        lam, span = find_schedule(convolution(8, 3))
        # Both dependencies need lambda_i >= 1; optimal is (1, 1).
        assert lam == (1, 1)
        assert span == (8 - 1) + (3 - 1) + 1

    def test_schedule_respects_all_dependencies(self):
        rec = triangular_solver(4)
        lam, _ = find_schedule(rec)
        for d in rec.dependencies:
            assert sum(l * v for l, v in zip(lam, d)) >= 1

    def test_conflicting_cycle_unschedulable(self):
        rec = UniformRecurrence(
            "cycle", Polytope([(0, 3), (0, 3)]), [(1, 0), (-1, 0)]
        )
        with pytest.raises(NoScheduleError):
            find_schedule(rec)

    def test_makespan_on_constrained_domain(self):
        rec = triangular_solver(4)
        lam, span = find_schedule(rec)
        assert span == makespan(lam, rec.domain)


class TestAllocation:
    def test_matrix_kernel(self):
        for u in [(1, 0, 0), (0, 1, 0), (1, 1, 1), (0, -1, 1)]:
            a = allocation_matrix(u)
            assert a.shape == (2, 3)
            assert (a @ np.array(u) == 0).all()
            assert np.linalg.matrix_rank(a) == 2

    def test_zero_vector_rejected(self):
        with pytest.raises(ValueError):
            allocation_matrix((0, 0))

    def test_matmul_allocation_conflict_free(self):
        rec = matmul(3)
        lam, _ = find_schedule(rec)
        u, a = find_allocation(rec, lam)
        assert sum(l * v for l, v in zip(lam, u)) != 0
        seen = set()
        for p in rec.domain.points():
            key = (project(a, p), sum(l * x for l, x in zip(lam, p)))
            assert key not in seen
            seen.add(key)

    def test_matmul_projects_to_n_squared_processors(self):
        rec = matmul(4)
        lam, _ = find_schedule(rec)
        u, a = find_allocation(rec, lam)
        procs = {project(a, p) for p in rec.domain.points()}
        assert len(procs) == 16  # the classic n x n array


class TestSynthesis:
    def test_matmul_array(self):
        arr = synthesize(matmul(3))
        assert arr.n_processors == 9
        assert arr.makespan == 7
        arr.verify()

    def test_convolution_linear_array(self):
        arr = synthesize(convolution(8, 3))
        # Projecting a 2-D domain yields a linear array.
        assert arr.n_processors in (3, 8)
        topo = arr.as_topology()
        assert topo.n_processors == arr.n_processors
        # Linear array: a path graph.
        degrees = sorted(topo.degree(p) for p in topo.processors)
        assert degrees[0] in (1, 2) and degrees[-1] <= 2

    def test_triangular_solver(self):
        arr = synthesize(triangular_solver(5))
        arr.verify()
        assert 0 < arr.utilization() <= 1.0

    def test_topology_is_nearest_neighbour(self):
        arr = synthesize(matmul(3))
        topo = arr.as_topology()
        # Mesh-like: every link direction is a projected dependence.
        for link in topo.links:
            u, v = tuple(link)
            step = tuple(abs(a - b) for a, b in zip(u, v))
            assert sum(step) >= 1

    def test_space_time_covers_domain(self):
        rec = convolution(5, 2)
        arr = synthesize(rec)
        assert set(arr.space_time) == set(rec.domain.points())
        assert min(t for _, t in arr.space_time.values()) == 0


SYSTOLIC_LARCS = """
algorithm conv(n, k);
nodetype pt[0 .. n-1, 0 .. k-1];
comphase pipe pt(i, j) -> pt(i + 1, j);
comphase accum pt(i, j) -> pt(i, j + 1);
"""

NON_UNIFORM_LARCS = """
algorithm rev(n);
nodetype pt[0 .. n-1];
comphase flip pt(i) -> pt(n - 1 - i);
"""

NON_AFFINE_LARCS = """
algorithm fftish(n);
nodetype pt[0 .. n-1];
comphase fly pt(i) -> pt(i xor 1);
"""


class TestDetect:
    def test_uniform_program_detected(self):
        rec = detect_recurrence(parse_larcs(SYSTOLIC_LARCS), {"n": 6, "k": 3})
        assert rec.dim == 2
        assert sorted(rec.dependencies) == [(0, 1), (1, 0)]
        assert len(rec.domain) == 18

    def test_detected_recurrence_synthesises(self):
        rec = detect_recurrence(parse_larcs(SYSTOLIC_LARCS), {"n": 6, "k": 3})
        arr = synthesize(rec)
        arr.verify()

    def test_affine_but_not_uniform_rejected(self):
        with pytest.raises(NotApplicableError, match="not uniform"):
            detect_recurrence(parse_larcs(NON_UNIFORM_LARCS), {"n": 8})

    def test_non_affine_rejected(self):
        with pytest.raises(NotApplicableError, match="not affine"):
            detect_recurrence(parse_larcs(NON_AFFINE_LARCS), {"n": 8})

    def test_indexed_phase_rejected(self):
        src = """
        algorithm f(m);
        constant n = 2 ** m;
        nodetype pt[0 .. n-1];
        comphase fly[s : 0 .. m-1] pt(i) -> pt(i + 1);
        """
        with pytest.raises(NotApplicableError, match="indexed"):
            detect_recurrence(parse_larcs(src), {"m": 3})

    def test_multiple_nodetypes_rejected(self):
        src = """
        algorithm f(n);
        nodetype a[0 .. n-1];
        nodetype b[0 .. n-1];
        comphase p a(i) -> b(i);
        """
        with pytest.raises(NotApplicableError, match="one nodetype"):
            detect_recurrence(parse_larcs(src), {"n": 4})

    def test_self_messages_skipped(self):
        src = """
        algorithm f(n);
        nodetype a[0 .. n-1];
        comphase keep a(i) -> a(i);
        comphase step a(i) -> a(i + 1);
        """
        rec = detect_recurrence(parse_larcs(src), {"n": 4})
        assert rec.dependencies == [(1,)]

    def test_stdlib_jacobi_is_uniform(self):
        # The Jacobi stencil is a uniform recurrence (guards trim the
        # boundary but the dependence vectors are constant).
        from repro.larcs import stdlib

        rec = detect_recurrence(parse_larcs(stdlib.JACOBI), {"rows": 4, "cols": 4})
        assert sorted(rec.dependencies) == [(-1, 0), (0, -1), (0, 1), (1, 0)]
