"""Chaos soaks for the online session: injected remap failures and a
SIGKILLed daemon resuming bit-identically from its journal checkpoints."""

import json
import os
import signal
import subprocess
import sys

import pytest

from repro.arch import networks
from repro.larcs import stdlib
from repro.online import (
    MappingSession,
    SessionConfig,
    generate_scenario,
)
from repro.pipeline.cache import ArtifactCache
from repro.runtime.chaos import ChaosPlan

SEED = 33
N_EVENTS = 20


def _instance():
    return stdlib.load("jacobi", rows=3, cols=3), networks.mesh(2, 3)


def _config(**kw):
    base = dict(drift_threshold=0.15, clear_threshold=0.02,
                cooldown_events=2)
    base.update(kw)
    return SessionConfig(**base)


class TestChaosSoak:
    def test_chaos_crash_with_retry_is_trace_identical(self, monkeypatch):
        # Strategy 0 of every portfolio crashes on its first attempt; with
        # one retry the supervised runtime recovers and the winner -- and
        # therefore the whole session trace -- is bit-identical to a
        # chaos-free run.
        tg, topo = _instance()
        scn = generate_scenario(tg, topo, seed=SEED, n_events=N_EVENTS)
        cfg = _config(retries=1, checkpoint_every=0)

        clean = MappingSession(tg, topo, cfg).run(scn.events)

        monkeypatch.setenv("REPRO_CHAOS", json.dumps({"crash": [[0, 1]]}))
        chaotic = MappingSession(tg, topo, cfg).run(scn.events)
        assert chaotic.trace_fingerprint == clean.trace_fingerprint
        assert (chaotic.final_mapping_fingerprint
                == clean.final_mapping_fingerprint)

    def test_all_strategies_dead_degrades_gracefully(self):
        # When every remap attempt dies, the session must keep serving
        # the (still valid) incumbent mapping and record the failure --
        # never raise out of apply(), never serve garbage.
        tg, topo = _instance()
        scn = generate_scenario(tg, topo, seed=SEED, n_events=N_EVENTS)
        cfg = _config(drift_threshold=0.01, clear_threshold=0.0,
                      cooldown_events=0, checkpoint_every=0)
        session = MappingSession(tg, topo, cfg)
        # Inject after construction so the initial portfolio succeeds;
        # every subsequent background remap crashes on every strategy.
        session._chaos = ChaosPlan.from_dict(
            {"crash": [[i, 1] for i in range(16)]}
        )

        def always_valid(record):
            session.mapping.validate(require_routes=True)

        report = session.run(scn.events, on_event=always_valid)
        assert report.counters.get("remaps_triggered", 0) >= 1
        assert report.counters.get("remaps_failed", 0) >= 1
        assert report.counters.get("swaps", 0) == 0
        failed = [r for r in report.records
                  if (r.remap or {}).get("outcome") == "failed"]
        assert failed
        session.mapping.validate(require_routes=True)

    def test_chaos_env_soak_serves_valid_mappings_throughout(self, monkeypatch):
        # The CI soak: a full seeded scenario under an injected
        # crash-then-recover plan; every intermediate mapping validates.
        tg, topo = _instance()
        scn = generate_scenario(
            tg, topo, seed=7, n_events=30, rates={"fault": 2.0, "flap": 1.0}
        )
        monkeypatch.setenv(
            "REPRO_CHAOS", json.dumps({"crash": [[0, 1], [1, 1]]})
        )
        session = MappingSession(tg, topo, _config(retries=1,
                                                   checkpoint_every=0))
        session.run(scn.events,
                    on_event=lambda r: session.mapping.validate(
                        require_routes=True))


_KILL_SCRIPT = """
import os, signal, sys
from repro.arch import networks
from repro.larcs import stdlib
from repro.online import MappingSession, SessionConfig, generate_scenario
from repro.pipeline.cache import ArtifactCache

cache_dir, kill_after = sys.argv[1], int(sys.argv[2])
tg = stdlib.load("jacobi", rows=3, cols=3)
topo = networks.mesh(2, 3)
scn = generate_scenario(tg, topo, seed={seed}, n_events={n_events})
cfg = SessionConfig(drift_threshold=0.15, clear_threshold=0.02,
                    cooldown_events=2)
session = MappingSession(tg, topo, cfg, cache=ArtifactCache(cache_dir))

count = 0
def cb(record):
    global count
    count += 1
    if count == kill_after:
        os.kill(os.getpid(), signal.SIGKILL)  # no cleanup, no atexit

session.run(scn.events, on_event=cb)
print("survived", count)
""".format(seed=SEED, n_events=N_EVENTS)


class TestKillResume:
    @pytest.mark.parametrize("kill_after", [5, 13])
    def test_sigkilled_session_resumes_bit_identically(
        self, tmp_path, kill_after
    ):
        tg, topo = _instance()
        scn = generate_scenario(tg, topo, seed=SEED, n_events=N_EVENTS)
        cfg = _config()

        want = MappingSession(
            tg, topo, cfg, cache=ArtifactCache(str(tmp_path / "full"))
        ).run(scn.events)

        script = tmp_path / "daemon.py"
        script.write_text(_KILL_SCRIPT)
        kill_cache = tmp_path / "killed"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH")) if p
        )
        proc = subprocess.run(
            [sys.executable, str(script), str(kill_cache), str(kill_after)],
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr
        assert "survived" not in proc.stdout

        resumed = MappingSession(
            tg, topo, cfg, cache=ArtifactCache(str(kill_cache))
        )
        got = resumed.run(scn.events, resume="auto")
        # The kill landed in the callback AFTER event kill_after-1 was
        # applied and checkpointed, so exactly that many events restore.
        assert got.resumed_at == kill_after
        assert got.trace_fingerprint == want.trace_fingerprint
        assert got.final_mapping_fingerprint == want.final_mapping_fingerprint
        assert got.final_comm_cost == want.final_comm_cost
        assert got.counters["resumed_events"] == kill_after
